//! Prefix caching: ref-counted shared KV blocks with copy-on-write and
//! LRU eviction — vLLM-style automatic prefix caching for the serving
//! engine.
//!
//! Production traffic is dominated by requests sharing long system
//! prompts. Without sharing, every request pays the full prefill compute
//! and pins a private copy of the prompt's KV. [`PrefixCache`] stores each
//! common prefix **once**: the prefix is cut into fixed-size token blocks,
//! each block is named by a deterministic hash chained through its
//! ancestors (so equal hashes imply equal *positions within equal
//! prefixes*, and the cache is a radix tree over block hashes), and
//! resident blocks carry a reference count of the sequences using them.
//!
//! Three mechanisms follow:
//!
//! * **Sharing** — a request whose prefix chain is (partially) resident
//!   skips the covered prefill tokens and charges only its private KV
//!   against capacity; the shared blocks are charged once, globally.
//! * **Copy-on-write** — a partially-filled tail block cannot be extended
//!   in place by any one sequence without corrupting the others, so a
//!   sequence that appends past a *shared* tail block takes a private
//!   copy first (counted per admission as
//!   [`ServingReport::prefix_cow_copies`](super::report::ServingReport::prefix_cow_copies)).
//! * **LRU eviction** — completed sequences release their references but
//!   leave the blocks resident; unreferenced blocks are reclaimed
//!   leaf-first in least-recently-used order only when admission needs
//!   the capacity back.
//!
//! The cache is deliberately a standalone structure (like
//! [`PagedKvAllocator`](super::kv::PagedKvAllocator)) so its invariants —
//! refcounts never underflow, resident blocks never exceed what `insert`
//! put there, eviction only touches unreferenced leaves, releasing every
//! holder drains refcounts to zero — are independently proptestable.

use crate::error::OptimusError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Reclamation order for unreferenced cache blocks.
///
/// `Lru` is the classic recency order. `Lfu` weights recency by
/// popularity: blocks of a frequently-reacquired chain (the head of a
/// Zipf request distribution) are reclaimed last, so the hot system
/// prompt never falls out of a pressured cache. Both orders are pure
/// integer bookkeeping and never touch the audited float stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CacheEviction {
    /// Least-recently-used first (the PR 5 behaviour; bit-identical).
    #[default]
    Lru,
    /// Least-frequently-used first, recency as the tiebreak.
    Lfu,
}

/// Engine-facing prefix-caching configuration (off by default; enable via
/// [`Scenario::prefix_caching`](super::scenario::Scenario::prefix_caching)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCachingConfig {
    /// Tokens per shared KV block (the sharing granularity; vLLM defaults
    /// to 16). Independent of the [`KvLayout`](super::kv::KvLayout) used
    /// for private KV accounting.
    pub block_tokens: u32,
    /// Reclamation order for unreferenced blocks (defaults to LRU, which
    /// reproduces the pre-coordination behaviour bit for bit).
    #[serde(default)]
    pub eviction: CacheEviction,
}

impl PrefixCachingConfig {
    pub(crate) fn validate(&self) -> Result<(), OptimusError> {
        if self.block_tokens == 0 {
            return Err(OptimusError::Serving {
                reason: "prefix caching needs block_tokens ≥ 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// The shared-prefix tag a request may carry: which system prompt its
/// first `tokens` prompt tokens are, identified by a stable id. Two
/// requests with the same id share identical leading tokens (the trace
/// generator guarantees equal lengths per id; recorded traces must too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedPrefix {
    /// Stable identity of the shared prefix (e.g. a hash of the system
    /// prompt text).
    pub id: u64,
    /// Length of the shared prefix (tokens); must be ≥ 1 and ≤ the
    /// request's `prompt_tokens`.
    pub tokens: u32,
}

/// splitmix64 finalizer: the deterministic mixer block hashes chain
/// through. Good avalanche, no allocation, stable across platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One block of a prefix chain: its position-chained hash and the tokens
/// it actually holds (`block_tokens` for full blocks, the remainder for a
/// partial tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixBlock {
    /// Chained block hash (names the block in the cache's radix index).
    pub hash: u64,
    /// Tokens cached in this block.
    pub tokens: u32,
}

impl SharedPrefix {
    /// Full blocks of the prefix at `block_tokens` granularity — the
    /// sharable span. Tokens past the last full block live in a partial
    /// tail block that divergent continuations copy-on-write.
    #[must_use]
    pub fn shared_tokens(&self, block_tokens: u32) -> u32 {
        (self.tokens / block_tokens) * block_tokens
    }

    /// The prefix as a chain of hashed blocks: one node per full block
    /// plus, when the length is not block-aligned, a final partial tail
    /// node. Each hash chains through its parent's, so chains for
    /// different prefixes (or different depths) never alias.
    #[must_use]
    pub fn block_chain(&self, block_tokens: u32) -> Vec<PrefixBlock> {
        let full = (self.tokens / block_tokens) as usize;
        let tail = self.tokens % block_tokens;
        let mut chain = Vec::with_capacity(full + usize::from(tail > 0));
        let mut h = mix(self.id ^ 0xa076_1d64_78bd_642f);
        for i in 0..full {
            h = mix(h ^ (i as u64 + 1));
            chain.push(PrefixBlock {
                hash: h,
                tokens: block_tokens,
            });
        }
        if tail > 0 {
            h = mix(h ^ (full as u64 + 1) ^ (u64::from(tail) << 32));
            chain.push(PrefixBlock {
                hash: h,
                tokens: tail,
            });
        }
        chain
    }
}

/// One resident block of the cache's radix index.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Parent block hash (`None` for a chain's first block).
    parent: Option<u64>,
    /// Resident children (a block is only evictable as a leaf).
    children: u32,
    /// Sequences currently holding a reference.
    refcount: u32,
    /// Tokens cached in this block.
    tokens: u32,
    /// Logical LRU stamp of the last acquire/insert touch.
    last_use: u64,
    /// Times this block was reacquired while resident (the popularity
    /// signal [`CacheEviction::Lfu`] orders reclamation by).
    hits: u64,
}

/// Position of an unreferenced leaf in the reclamation order. The last
/// element is always the block hash, so eviction can recover the victim
/// regardless of mode.
fn free_key(eviction: CacheEviction, node: &Node, hash: u64) -> (u64, u64, u64) {
    match eviction {
        CacheEviction::Lru => (node.last_use, 0, hash),
        CacheEviction::Lfu => (node.hits, node.last_use, hash),
    }
}

/// Ref-counted shared-block cache: a radix tree over chained block
/// hashes with LRU reclamation of unreferenced blocks.
///
/// The engine holds one per blade (KV is per-blade memory); the
/// standalone API is the proptest surface. All bookkeeping is integer,
/// so cache decisions never perturb the engine's audited float stream.
#[derive(Debug, Clone, Default)]
pub struct PrefixCache {
    nodes: BTreeMap<u64, Node>,
    /// Unreferenced leaves in reclamation order (see [`free_key`]): the
    /// next victim is always `free.first()`.
    free: BTreeSet<(u64, u64, u64)>,
    /// Logical clock for LRU stamps.
    tick: u64,
    /// Tokens actually cached across resident blocks.
    resident_tokens: u64,
    /// Reclamation order (LRU by default).
    eviction: CacheEviction,
}

impl PrefixCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given reclamation order.
    #[must_use]
    pub fn with_eviction(eviction: CacheEviction) -> Self {
        Self {
            eviction,
            ..Self::default()
        }
    }

    /// Resident blocks (referenced or LRU-reclaimable).
    #[must_use]
    pub fn resident_blocks(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Tokens actually cached across resident blocks (a partial tail
    /// block counts its real token count, not the block size).
    #[must_use]
    pub fn resident_tokens(&self) -> u64 {
        self.resident_tokens
    }

    /// Capacity charged by resident blocks at `block_tokens` granularity:
    /// every resident block pins a whole block of KV memory.
    #[must_use]
    pub fn charged_tokens(&self, block_tokens: u32) -> u64 {
        self.resident_blocks() * u64::from(block_tokens)
    }

    /// Blocks currently reclaimable (resident, unreferenced leaves).
    #[must_use]
    pub fn reclaimable_blocks(&self) -> u64 {
        self.free.len() as u64
    }

    /// Leading blocks of `chain` that are resident, without touching
    /// refcounts or LRU order — the admission-planning probe.
    #[must_use]
    pub fn peek(&self, chain: &[PrefixBlock]) -> usize {
        chain
            .iter()
            .take_while(|b| self.nodes.contains_key(&b.hash))
            .count()
    }

    /// Takes a reference on every resident leading block of `chain` and
    /// returns how many blocks hit. Hit blocks are pinned (never evicted)
    /// until [`Self::release`]d; the caller typically [`Self::insert`]s
    /// the missing suffix next.
    pub fn acquire(&mut self, chain: &[PrefixBlock]) -> usize {
        let hits = self.peek(chain);
        for b in &chain[..hits] {
            self.tick += 1;
            let eviction = self.eviction;
            let node = self.nodes.get_mut(&b.hash).expect("hit block resident");
            if node.refcount == 0 && node.children == 0 {
                // The block stops being an evictable leaf.
                let key = free_key(eviction, node, b.hash);
                self.free.remove(&key);
            }
            node.last_use = self.tick;
            node.refcount += 1;
            node.hits += 1;
        }
        hits
    }

    /// Inserts `chain[from..]` as resident blocks referenced once by the
    /// caller (who must already hold references on `chain[..from]`, i.e.
    /// `from` is an [`Self::acquire`] result for this chain).
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] if `chain[from]`'s parent is not
    /// resident (the chain property would break) or a block to insert is
    /// already resident (double insert).
    pub fn insert(&mut self, chain: &[PrefixBlock], from: usize) -> Result<(), OptimusError> {
        for (i, b) in chain.iter().enumerate().skip(from) {
            let parent = if i == 0 {
                None
            } else {
                Some(chain[i - 1].hash)
            };
            if self.nodes.contains_key(&b.hash) {
                return Err(OptimusError::Serving {
                    reason: format!("prefix block {:#018x} is already resident", b.hash),
                });
            }
            if let Some(p) = parent {
                let eviction = self.eviction;
                let Some(pn) = self.nodes.get_mut(&p) else {
                    return Err(OptimusError::Serving {
                        reason: format!(
                            "prefix block {:#018x} inserted before its parent {p:#018x}",
                            b.hash
                        ),
                    });
                };
                if pn.refcount == 0 && pn.children == 0 {
                    // The parent stops being an evictable leaf.
                    let key = free_key(eviction, pn, p);
                    self.free.remove(&key);
                }
                pn.children += 1;
            }
            self.tick += 1;
            self.nodes.insert(
                b.hash,
                Node {
                    parent,
                    children: 0,
                    refcount: 1,
                    tokens: b.tokens,
                    last_use: self.tick,
                    hits: 0,
                },
            );
            self.resident_tokens += u64::from(b.tokens);
        }
        Ok(())
    }

    /// Releases one reference on each of `chain[..count]` (the blocks a
    /// sequence acquired or inserted). Blocks stay resident; those that
    /// drop to zero references become LRU-reclaimable leaves.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for a block that is not resident
    /// or already unreferenced (refcount underflow) — the state is left
    /// untouched in that case.
    pub fn release(&mut self, chain: &[PrefixBlock], count: usize) -> Result<(), OptimusError> {
        let blocks = &chain[..count];
        for b in blocks {
            match self.nodes.get(&b.hash) {
                None => {
                    return Err(OptimusError::Serving {
                        reason: format!("released prefix block {:#018x} is not resident", b.hash),
                    })
                }
                Some(node) if node.refcount == 0 => {
                    return Err(OptimusError::Serving {
                        reason: format!("prefix block {:#018x} refcount would underflow", b.hash),
                    })
                }
                Some(_) => {}
            }
        }
        for b in blocks {
            let eviction = self.eviction;
            let node = self.nodes.get_mut(&b.hash).expect("checked resident");
            node.refcount -= 1;
            if node.refcount == 0 && node.children == 0 {
                let key = free_key(eviction, node, b.hash);
                self.free.insert(key);
            }
        }
        Ok(())
    }

    /// Reclaims the first unreferenced leaf block in the configured
    /// reclamation order (LRU by default, LFU under
    /// [`CacheEviction::Lfu`]), if any, returning the tokens it cached.
    /// Its parent may become reclaimable in turn, so repeated calls peel
    /// a dead chain back to front.
    pub fn evict_lru(&mut self) -> Option<u32> {
        let &key = self.free.first()?;
        self.free.remove(&key);
        let hash = key.2;
        let node = self.nodes.remove(&hash).expect("free block resident");
        debug_assert_eq!(node.refcount, 0);
        debug_assert_eq!(node.children, 0);
        self.resident_tokens -= u64::from(node.tokens);
        if let Some(p) = node.parent {
            let eviction = self.eviction;
            let pn = self.nodes.get_mut(&p).expect("parent resident");
            pn.children -= 1;
            if pn.refcount == 0 && pn.children == 0 {
                let parent_key = free_key(eviction, pn, p);
                self.free.insert(parent_key);
            }
        }
        Some(node.tokens)
    }

    /// Reclaims LRU blocks until the cache charges at most
    /// `budget_tokens` at `block_tokens` granularity (or nothing more is
    /// reclaimable). Returns the number of blocks evicted.
    pub fn evict_to_budget(&mut self, block_tokens: u32, budget_tokens: u64) -> u64 {
        let mut evicted = 0;
        while self.charged_tokens(block_tokens) > budget_tokens && self.evict_lru().is_some() {
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(id: u64, tokens: u32, block: u32) -> Vec<PrefixBlock> {
        SharedPrefix { id, tokens }.block_chain(block)
    }

    #[test]
    fn block_chain_shape_and_determinism() {
        let p = SharedPrefix { id: 7, tokens: 40 };
        let c = p.block_chain(16);
        assert_eq!(c.len(), 3, "two full blocks + one tail");
        assert_eq!(c[0].tokens, 16);
        assert_eq!(c[1].tokens, 16);
        assert_eq!(c[2].tokens, 8);
        assert_eq!(p.shared_tokens(16), 32);
        assert_eq!(c, p.block_chain(16), "chains are pure functions");
        // Distinct ids and distinct depths never alias.
        let other = chain(8, 40, 16);
        assert!(c.iter().all(|b| other.iter().all(|o| o.hash != b.hash)));
        let aligned = SharedPrefix { id: 7, tokens: 32 }.block_chain(16);
        assert_eq!(aligned.len(), 2);
        assert_eq!(&c[..2], &aligned[..], "shared ancestry has equal hashes");
    }

    #[test]
    fn acquire_insert_release_lifecycle() {
        let mut cache = PrefixCache::new();
        let c = chain(1, 40, 16); // 3 blocks (16+16+8 tokens)
        assert_eq!(cache.peek(&c), 0);
        let hits = cache.acquire(&c);
        assert_eq!(hits, 0, "cold cache misses");
        cache.insert(&c, hits).unwrap();
        assert_eq!(cache.resident_blocks(), 3);
        assert_eq!(cache.resident_tokens(), 40);
        assert_eq!(cache.charged_tokens(16), 48);
        assert_eq!(cache.reclaimable_blocks(), 0, "all blocks referenced");

        // A second holder of the same prefix hits everything.
        let hits2 = cache.acquire(&c);
        assert_eq!(hits2, 3);
        cache.release(&c, 3).unwrap();
        assert_eq!(cache.reclaimable_blocks(), 0, "first holder remains");
        cache.release(&c, 3).unwrap();
        assert_eq!(
            cache.reclaimable_blocks(),
            1,
            "only the leaf is reclaimable"
        );

        // Evicting peels the chain back to front.
        assert_eq!(cache.evict_lru(), Some(8));
        assert_eq!(cache.evict_lru(), Some(16));
        assert_eq!(cache.evict_lru(), Some(16));
        assert_eq!(cache.evict_lru(), None);
        assert_eq!(cache.resident_blocks(), 0);
        assert_eq!(cache.resident_tokens(), 0);
    }

    #[test]
    fn partial_hit_acquires_prefix_only() {
        let mut cache = PrefixCache::new();
        let long = chain(3, 64, 16); // 4 full blocks
        let hits_long = cache.acquire(&long);
        cache.insert(&long, hits_long).unwrap();
        cache.release(&long, 4).unwrap();
        // A shorter prefix of the same id shares the leading blocks.
        let short = chain(3, 32, 16);
        assert_eq!(cache.peek(&short), 2);
        let hits = cache.acquire(&short);
        assert_eq!(hits, 2);
        // Nothing left to insert: the whole short chain hit, and the
        // full-chain insert is a no-op...
        cache.insert(&short, hits).unwrap();
        // ...while re-inserting resident blocks is a typed error.
        assert!(matches!(
            cache.insert(&short, 0),
            Err(OptimusError::Serving { .. })
        ));
        cache.release(&short, hits).unwrap();
    }

    #[test]
    fn release_misuse_is_typed_and_state_preserving() {
        let mut cache = PrefixCache::new();
        let c = chain(5, 32, 16);
        cache.insert(&c, 0).unwrap();
        cache.release(&c, 2).unwrap();
        // Underflow: every block already at refcount 0.
        assert!(matches!(
            cache.release(&c, 2),
            Err(OptimusError::Serving { .. })
        ));
        assert_eq!(cache.resident_blocks(), 2, "failed release changed nothing");
        // Releasing a never-resident chain is typed too.
        let other = chain(6, 16, 16);
        assert!(matches!(
            cache.release(&other, 1),
            Err(OptimusError::Serving { .. })
        ));
        // Inserting a child before its parent is typed.
        let deep = chain(7, 48, 16);
        assert!(matches!(
            cache.insert(&deep, 1),
            Err(OptimusError::Serving { .. })
        ));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut cache = PrefixCache::new();
        let a = chain(10, 16, 16);
        let b = chain(11, 16, 16);
        let hits_a = cache.acquire(&a);
        cache.insert(&a, hits_a).unwrap();
        let hits_b = cache.acquire(&b);
        cache.insert(&b, hits_b).unwrap();
        cache.release(&a, 1).unwrap();
        cache.release(&b, 1).unwrap();
        // Touch `a` again: `b` becomes the LRU victim.
        cache.acquire(&a);
        cache.release(&a, 1).unwrap();
        let victim_tokens = cache.evict_lru().unwrap();
        assert_eq!(victim_tokens, 16);
        assert_eq!(cache.peek(&b), 0, "b was evicted");
        assert_eq!(cache.peek(&a), 1, "a survived");
    }

    #[test]
    fn evict_to_budget_stops_at_referenced_blocks() {
        let mut cache = PrefixCache::new();
        let a = chain(20, 48, 16); // 3 blocks, stays referenced
        let b = chain(21, 48, 16); // 3 blocks, released
        let hits_a = cache.acquire(&a);
        cache.insert(&a, hits_a).unwrap();
        let hits_b = cache.acquire(&b);
        cache.insert(&b, hits_b).unwrap();
        cache.release(&b, 3).unwrap();
        let evicted = cache.evict_to_budget(16, 0);
        assert_eq!(evicted, 3, "only the unreferenced chain is reclaimable");
        assert_eq!(cache.resident_blocks(), 3);
        assert_eq!(cache.charged_tokens(16), 48);
    }

    #[test]
    fn config_validation() {
        assert!(PrefixCachingConfig {
            block_tokens: 0,
            eviction: CacheEviction::Lru,
        }
        .validate()
        .is_err());
        assert!(PrefixCachingConfig {
            block_tokens: 16,
            eviction: CacheEviction::Lfu,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn lfu_retains_the_popular_chain_where_lru_drops_it() {
        // Zipf head `hot` is touched many times early; the cold chain is
        // touched once, later. Under LRU the *older* hot chain is the
        // victim; under LFU popularity outranks recency and the cold
        // chain goes first.
        for (eviction, expect_hot_survives) in
            [(CacheEviction::Lru, false), (CacheEviction::Lfu, true)]
        {
            let mut cache = PrefixCache::with_eviction(eviction);
            let hot = chain(1, 16, 16);
            let cold = chain(2, 16, 16);
            let from = cache.acquire(&hot);
            cache.insert(&hot, from).unwrap();
            cache.release(&hot, 1).unwrap();
            for _ in 0..5 {
                let hits = cache.acquire(&hot);
                assert_eq!(hits, 1);
                cache.release(&hot, 1).unwrap();
            }
            let from = cache.acquire(&cold);
            cache.insert(&cold, from).unwrap();
            cache.release(&cold, 1).unwrap();
            let evicted = cache.evict_to_budget(16, 16);
            assert_eq!(evicted, 1);
            assert_eq!(
                cache.peek(&hot),
                usize::from(expect_hot_survives),
                "{eviction:?}: hot chain residency"
            );
            assert_eq!(cache.peek(&cold), usize::from(!expect_hot_survives));
        }
    }
}
