//! Regression anchor for the serving API redesign: the single-blade
//! FCFS + contiguous-KV configuration must reproduce the PR 2 monolith's
//! `ServingReport` **bit-for-bit** on the seeded Poisson trace used by
//! the bench experiments — both through the deprecated PR 3 constructor
//! shim (`ServingSimulator::new`) and through the `Scenario` builder the
//! shim now delegates into.
//!
//! The golden bit patterns below were captured from the pre-refactor
//! `crates/core/src/serving.rs` (commit `bff4d3a`) replaying the
//! `serving_experiments::base_trace()` workload: Llama-405B, TP=64, the
//! SCD blade at 16 TB/s per SPU, `ServingConfig::for_system(max_batch=32)`
//! (contiguous KV, whole-prompt prefill, bucketized-mean pricing, bucket
//! 32), trace seed 2025 with 48 requests at 8 req/s and I/O ~200/200.

use llm_workload::{ModelZoo, Parallelism};
use optimus::serving::{
    DispatchMode, RoutingPolicy, Scenario, ServingConfig, ServingReport, ServingSimulator,
    SharedPrefixTraceConfig, SimCore, Topology, TraceConfig,
};
use optimus::{MultiBladeSystem, SpeedupStudy};

fn golden_trace() -> TraceConfig {
    TraceConfig {
        seed: 2025,
        requests: 48,
        arrival_rate_per_s: 8.0,
        prompt_tokens: (150, 250),
        output_tokens: (150, 250),
    }
}

fn assert_pr2_bits(path: &str, r: &ServingReport) {
    assert_eq!(r.requests, 48, "{path}");
    assert_eq!(r.completed, 48, "{path}");
    assert_eq!(r.evictions, 0, "{path}");
    assert_eq!(r.wasted_tokens, 0, "{path}");
    assert_eq!(r.decode_iterations, 3300, "{path}");
    // Prefix caching is off by default: the cache must never have been
    // consulted, let alone perturbed anything.
    assert_eq!(r.prefix_hits + r.prefix_misses, 0, "{path}");
    assert_eq!(r.prefix_tokens_saved, 0, "{path}");
    assert_eq!(r.prefix_cow_copies, 0, "{path}");
    assert_eq!(r.prefix_cache_evictions, 0, "{path}");
    assert_eq!(r.kv_shared_peak_bytes, 0.0, "{path}");
    let bits = [
        ("makespan_s", r.makespan_s, 0x4014708407609be9u64),
        ("throughput_tok_s", r.throughput_tok_s, 0x409dba5b5ab1f1e4),
        ("goodput_tok_s", r.goodput_tok_s, 0x409dba5b5ab1f1e4),
        ("slo_attainment", r.slo_attainment, 0x3ff0000000000000),
        ("mean_batch", r.mean_batch, 0x4007a666cddab3e4),
        ("decode_time_s", r.decode_time_s, 0x4013a5c20250ce63),
        ("ttft.p50", r.ttft.p50, 0x3f6fdd14604de400),
        ("ttft.p95", r.ttft.p95, 0x3f7679c31757e600),
        ("ttft.p99", r.ttft.p99, 0x3f796fe787a21e00),
        ("tpot.p50", r.tpot.p50, 0x3f58bfa3a25353fa),
        ("tpot.p95", r.tpot.p95, 0x3f5987e162f6ebbc),
        ("tpot.p99", r.tpot.p99, 0x3f59909e07f63427),
        ("latency.p50", r.latency.p50, 0x3fd4396658dd2420),
        ("latency.p95", r.latency.p95, 0x3fd81b42f3b214c0),
        ("latency.p99", r.latency.p99, 0x3fd8c5ea83027430),
    ];
    for (name, got, want) in bits {
        assert_eq!(
            got.to_bits(),
            want,
            "{path}: {name} drifted from the PR 2 monolith: {got} ({:#018x} vs {want:#018x})",
            got.to_bits()
        );
    }
}

/// The deprecated PR 3 constructor shim must keep reproducing the PR 2
/// float bit patterns exactly.
#[test]
fn deprecated_single_blade_fcfs_shim_reproduces_pr2_bits() {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64).unwrap();
    let est = SpeedupStudy::paper_baseline().scd_inference();
    let config = ServingConfig::for_system(&est, &model, &par, 32).unwrap();
    let trace = golden_trace().synthesize().unwrap();
    #[allow(deprecated)] // the regression anchor pins the shim itself
    let sim = ServingSimulator::new(&est, &model, &par, config).unwrap();

    for (path, r) in [
        ("shim/parallel", sim.replay(&trace).unwrap()),
        ("shim/serial", sim.replay_serial(&trace).unwrap()),
    ] {
        assert_pr2_bits(path, &r);
        // The default SLO class blends to the same goodput bits.
        assert_eq!(r.per_class.len(), 1);
        assert_eq!(
            r.per_class[0].goodput_tok_s.to_bits(),
            r.goodput_tok_s.to_bits()
        );
    }
}

/// The scenario builder with the equivalent settings (for-system KV,
/// FCFS, one blade) must produce the same bits as the shim — the shim
/// and `Scenario` funnel into one validated core.
#[test]
fn scenario_single_blade_default_reproduces_pr2_bits() {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64).unwrap();
    let compiled = Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
        .model(&model)
        .parallelism(&par)
        .max_batch(32)
        .poisson(golden_trace())
        .compile()
        .unwrap();
    for (path, r) in [
        ("scenario/parallel", compiled.run().unwrap()),
        ("scenario/serial", compiled.run_serial().unwrap()),
    ] {
        assert_eq!(r.blades, 1, "{path}");
        assert_pr2_bits(path, &r.report);
    }
}

/// Golden bit patterns for the cluster-scale replay paths, captured at
/// the introduction of the event-driven core (which replays them
/// bit-identically to the per-step loops — both cores are pinned here, so
/// a drift in either one, or a divergence between them, fails).
#[test]
fn cluster_disaggregated_and_prefix_pins_hold_on_both_cores() {
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = TraceConfig {
        seed: 41,
        requests: 48,
        arrival_rate_per_s: 30.0,
        prompt_tokens: (64, 384),
        output_tokens: (16, 96),
    };
    let prefix_trace = SharedPrefixTraceConfig {
        seed: 43,
        requests: 32,
        arrival_rate_per_s: 60.0,
        prefixes: 2,
        prefix_tokens: (120, 250),
        zipf_s: 1.0,
        share_fraction: 0.9,
        unique_prompt_tokens: (16, 64),
        output_tokens: (8, 32),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
    };
    // (field value, golden bits) per scenario; captured from the per-step
    // loops at the pin commit.
    struct Pin {
        name: &'static str,
        completed: u32,
        decode_iterations: u64,
        prefix_hits: u64,
        prefix_tokens_saved: u64,
        bits: [(&'static str, u64); 8],
    }
    let pins = [
        Pin {
            name: "central",
            completed: 48,
            decode_iterations: 2321,
            prefix_hits: 0,
            prefix_tokens_saved: 0,
            bits: [
                ("makespan_s", 0x3ffb1f76da7c1ff6),
                ("throughput_tok_s", 0x409836bed9f91f46),
                ("decode_time_s", 0x400c831a8bfa15f4),
                ("mean_batch", 0x3ff2210649cf91cf),
                ("ttft.p50", 0x3f6a98d81d031000),
                ("ttft.p99", 0x3f73fc10103fe300),
                ("tpot.p50", 0x3f59331133aff863),
                ("latency.p99", 0x3fc3a04e94586368),
            ],
        },
        Pin {
            name: "disaggregated",
            completed: 48,
            decode_iterations: 2098,
            prefix_hits: 0,
            prefix_tokens_saved: 0,
            bits: [
                ("makespan_s", 0x3ffb1f8796a32eaf),
                ("throughput_tok_s", 0x409836afe95a1063),
                ("decode_time_s", 0x4009cd642e363eee),
                ("mean_batch", 0x3ff4147bf97d8dc0),
                ("ttft.p50", 0x3f6b7eb837fc4b00),
                ("ttft.p99", 0x3f74db6d37341d00),
                ("tpot.p50", 0x3f5936bf58ebb58e),
                ("latency.p99", 0x3fc351386987c630),
            ],
        },
        Pin {
            name: "prefix",
            completed: 32,
            decode_iterations: 260,
            prefix_hits: 23,
            prefix_tokens_saved: 3777,
            bits: [
                ("makespan_s", 0x3fdd25afa1279fa2),
                ("throughput_tok_s", 0x4095f51ef86462b1),
                ("decode_time_s", 0x3fd9b412d01f700c),
                ("mean_batch", 0x4003c9b519cc6eb7),
                ("ttft.p50", 0x3f700a9901e13300),
                ("ttft.p99", 0x3f7840cc4f983208),
                ("tpot.p50", 0x3f5c5d313eccb8ab),
                ("latency.p99", 0x3fad0798cf543510),
            ],
        },
    ];
    for core in [SimCore::EventDriven, SimCore::PerStep] {
        let runs = [
            base()
                .routing(RoutingPolicy::JoinShortestQueue)
                .dispatch(DispatchMode::Central)
                .poisson(trace),
            base()
                .topology(Topology::disaggregated(1, 3))
                .poisson(trace),
            base()
                .prefix_caching(16)
                .topology(Topology::mixed(1))
                .trace(&prefix_trace),
        ];
        for (scenario, pin) in runs.into_iter().zip(&pins) {
            let r = scenario.core(core).compile().unwrap().run().unwrap().report;
            let path = format!("{}/{core:?}", pin.name);
            assert_eq!(r.completed, pin.completed, "{path}");
            assert_eq!(r.decode_iterations, pin.decode_iterations, "{path}");
            assert_eq!(r.prefix_hits, pin.prefix_hits, "{path}");
            assert_eq!(r.prefix_tokens_saved, pin.prefix_tokens_saved, "{path}");
            let got = [
                ("makespan_s", r.makespan_s),
                ("throughput_tok_s", r.throughput_tok_s),
                ("decode_time_s", r.decode_time_s),
                ("mean_batch", r.mean_batch),
                ("ttft.p50", r.ttft.p50),
                ("ttft.p99", r.ttft.p99),
                ("tpot.p50", r.tpot.p50),
                ("latency.p99", r.latency.p99),
            ];
            for ((name, value), &(_, want)) in got.into_iter().zip(&pin.bits) {
                assert_eq!(
                    value.to_bits(),
                    want,
                    "{path}: {name} drifted: {value} ({:#018x} vs {want:#018x})",
                    value.to_bits()
                );
            }
        }
    }
}
