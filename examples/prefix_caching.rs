//! Prefix caching: the README's tour of shared-KV serving.
//!
//! Serves a system-prompt-heavy workload — three long prompts Zipf-shared
//! across 90% of requests — on one SCD blade with and without prefix
//! caching at equal KV capacity, then prints the hit-rate accounting and
//! the TTFT win the ref-counted shared blocks buy.
//!
//! ```console
//! cargo run --release --example prefix_caching
//! ```

use llm_workload::{ModelZoo, Parallelism};
use optimus::serving::{CountingObserver, Scenario, SharedPrefixTraceConfig};
use optimus::MultiBladeSystem;

fn main() -> Result<(), optimus::OptimusError> {
    let system = MultiBladeSystem::new(1)?;
    let (model, par) = (ModelZoo::llama_405b(), Parallelism::pure_tp(64)?);
    let trace = SharedPrefixTraceConfig {
        seed: 2026,
        requests: 48,
        arrival_rate_per_s: 12.0,
        prefixes: 3,               // three system prompts...
        prefix_tokens: (600, 900), // ...of 600-900 tokens each
        zipf_s: 1.0,               // web-like popularity skew
        share_fraction: 0.9,       // 90% of requests open with one
        unique_prompt_tokens: (32, 128),
        output_tokens: (32, 96),
    };
    let scenario = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(8) // KV capacity = cryo-DRAM − weights (the default)
            .trace(&trace)
    };

    let plain = scenario().compile()?.run()?.report;
    let compiled = scenario().prefix_caching(16).compile()?; // 16-token shared blocks
    let mut observer = CountingObserver::default();
    let cached = compiled.run_observed(&mut observer)?.report;
    let counts = observer.counts();

    println!("uncached: {plain}");
    println!("cached:   {cached}");
    println!(
        "  {} hits / {} misses ({} events agree), {} prefill tokens never recomputed",
        cached.prefix_hits,
        cached.prefix_misses,
        counts.cache_hits + counts.cache_misses,
        cached.prefix_tokens_saved
    );
    println!(
        "  shared blocks peak at {:.1} MB (stored once, inside the {:.1} MB KV peak); \
         {} copy-on-write tail copies",
        cached.kv_shared_peak_bytes / 1e6,
        cached.kv_peak_bytes / 1e6,
        cached.prefix_cow_copies
    );
    println!(
        "  TTFT p99 {:.0} ms → {:.0} ms at equal KV capacity",
        plain.ttft.p99 * 1e3,
        cached.ttft.p99 * 1e3
    );
    Ok(())
}
