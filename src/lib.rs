//! Umbrella crate for the `scd-perf` workspace.
//!
//! Re-exports the layered crates that together reproduce the cross-layer
//! performance-evaluation stack of *"A System Level Performance Evaluation
//! for Superconducting Digital Systems"* (Kundu et al., DATE 2025):
//!
//! * [`scd_tech`] — device/technology layer (JJs, PCL cells, JSRAM).
//! * [`scd_eda`] — RTL→PCL synthesis flow and design database.
//! * [`scd_mem`] — memory hierarchy, cryo-DRAM and the 4K↔77K datalink.
//! * [`scd_noc`] — discrete-event 2D-torus network simulator.
//! * [`scd_arch`] — SPU/SNU/blade architecture builders and GPU baseline.
//! * [`llm_workload`] — LLM model zoo, task graphs and TP/PP/DP sharding.
//! * [`optimus`] — the hierarchical-roofline performance model.
//!
//! # Examples
//!
//! ```
//! use scd_perf::optimus::TrainingEstimator;
//! use scd_perf::scd_arch::Blade;
//! use scd_perf::llm_workload::{ModelZoo, Parallelism};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let blade = Blade::baseline();
//! let model = ModelZoo::gpt3_76b();
//! let par = Parallelism::new(8, 8, 1)?;
//! let est = TrainingEstimator::new(blade.accelerator(), blade.interconnect());
//! let report = est.estimate(&model, &par, 64)?;
//! assert!(report.total_time_s() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod error;

pub use error::ScdError;
pub use llm_workload;
pub use optimus;
pub use scd_arch;
pub use scd_eda;
pub use scd_mem;
pub use scd_noc;
pub use scd_tech;
