//! The SCD Processing Unit (SPU) die stack (Fig. 3a).
//!
//! A vertical stack joined by NbTiN TSVs: the high-throughput compute die,
//! a host-controller die, four HD-JSRAM memory dies (private L1 D-cache),
//! one HP-JSRAM die (register files + L1 I-caches), and the control
//! complex + local switch at the base.

use crate::compute::MacArray;
use crate::error::ArchError;
use scd_tech::jsram::{JsramArray, JsramCell};
use scd_tech::units::{Area, Bandwidth, Energy, TimeInterval};
use scd_tech::{JosephsonJunction, Technology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of one SPU stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpuConfig {
    /// Die footprint (12 mm × 12 mm in Fig. 3a).
    pub die_area: Area,
    /// Fraction of the compute die devoted to the MAC array.
    pub compute_fraction: f64,
    /// Junctions per MAC.
    pub mac_junctions: u64,
    /// MAC utilization cap.
    pub utilization: f64,
    /// Private L1 D-cache capacity (4 HD stacks → 24 MB in Fig. 3c).
    pub l1_capacity_bytes: u64,
    /// L1 banks.
    pub l1_banks: u32,
    /// Register-file capacity on the HP die.
    pub rf_capacity_bytes: u64,
    /// Register-file banks.
    pub rf_banks: u32,
}

impl Default for SpuConfig {
    fn default() -> Self {
        Self {
            die_area: Area::from_mm2(144.0),
            compute_fraction: 0.57,
            mac_junctions: 8_000,
            utilization: 0.8,
            l1_capacity_bytes: 24 << 20,
            l1_banks: 64,
            rf_capacity_bytes: 256 << 10,
            rf_banks: 32,
        }
    }
}

/// A derived SPU: compute array plus its on-stack memories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spu {
    config: SpuConfig,
    mac_array: MacArray,
    l1: JsramArray,
    register_file: JsramArray,
}

impl Spu {
    /// Derives an SPU from the technology and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the MAC array or JSRAM arrays cannot be
    /// realized.
    pub fn derive(tech: &Technology, config: SpuConfig) -> Result<Self, ArchError> {
        let compute_area = config.die_area * config.compute_fraction;
        let mac_array =
            MacArray::derive(tech, compute_area, config.mac_junctions, config.utilization)?;
        let l1 = JsramArray::new(
            JsramCell::Hd1R1W,
            config.l1_capacity_bytes,
            config.l1_banks,
            tech.clock,
        )
        .map_err(|e| ArchError::Derivation {
            step: "L1 JSRAM",
            detail: e.to_string(),
        })?;
        let register_file = JsramArray::new(
            JsramCell::Hp3R2W,
            config.rf_capacity_bytes,
            config.rf_banks,
            tech.clock,
        )
        .map_err(|e| ArchError::Derivation {
            step: "register file",
            detail: e.to_string(),
        })?;
        Ok(Self {
            config,
            mac_array,
            l1,
            register_file,
        })
    }

    /// Baseline SPU in the NbTiN technology.
    ///
    /// # Errors
    ///
    /// Propagates derivation failures.
    pub fn baseline() -> Result<Self, ArchError> {
        Self::derive(&Technology::scd_nbtin(), SpuConfig::default())
    }

    /// Configuration used.
    #[must_use]
    pub fn config(&self) -> &SpuConfig {
        &self.config
    }

    /// The MAC array.
    #[must_use]
    pub fn mac_array(&self) -> &MacArray {
        &self.mac_array
    }

    /// The private L1 D-cache array.
    #[must_use]
    pub fn l1(&self) -> &JsramArray {
        &self.l1
    }

    /// The HP register-file array.
    #[must_use]
    pub fn register_file(&self) -> &JsramArray {
        &self.register_file
    }

    /// Peak compute throughput.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.mac_array.peak_flops()
    }

    /// L1 read bandwidth available to the datapath.
    #[must_use]
    pub fn l1_bandwidth(&self) -> Bandwidth {
        self.l1.read_bandwidth()
    }

    /// L1 access latency: a few clock cycles of XY addressing plus TSV
    /// hop.
    #[must_use]
    pub fn l1_latency(&self) -> TimeInterval {
        TimeInterval::from_base(30.0 * self.mac_array.clock.period().seconds())
    }

    /// Register-file latency (cycles on the same die).
    #[must_use]
    pub fn rf_latency(&self) -> TimeInterval {
        TimeInterval::from_base(4.0 * self.mac_array.clock.period().seconds())
    }

    /// Total junction budget of the stack (compute + memories).
    #[must_use]
    pub fn junctions(&self) -> u64 {
        self.mac_array.junctions() + self.l1.junctions() + self.register_file.junctions()
    }

    /// Dynamic power at full load.
    #[must_use]
    pub fn dynamic_power_w(&self, jj: &JosephsonJunction) -> f64 {
        let per_cycle = self.mac_array.dynamic_energy_per_cycle(jj);
        let e: Energy = per_cycle;
        e.joules() * self.mac_array.clock.hz()
    }
}

impl fmt::Display for Spu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPU: {:.2} PFLOP/s peak, {} MB L1, {} kJJ RF",
            self.peak_flops() / 1e15,
            self.config.l1_capacity_bytes >> 20,
            self.register_file.junctions() / 1000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spu_matches_fig3c() {
        let spu = Spu::baseline().unwrap();
        let pflops = spu.peak_flops() / 1e15;
        assert!((2.3..=2.6).contains(&pflops));
        assert_eq!(spu.config().l1_capacity_bytes, 24 << 20);
    }

    #[test]
    fn l1_bandwidth_far_exceeds_dram_share() {
        let spu = Spu::baseline().unwrap();
        // 64 banks × 32 B × 30 GHz ≈ 61 TB/s, versus 0.47 TB/s of DRAM.
        assert!(spu.l1_bandwidth().tbps() > 50.0);
    }

    #[test]
    fn latencies_ordered() {
        let spu = Spu::baseline().unwrap();
        assert!(spu.rf_latency().seconds() < spu.l1_latency().seconds());
        assert!(spu.l1_latency().ns() < 2.0);
    }

    #[test]
    fn junction_budget_dominated_by_memory() {
        let spu = Spu::baseline().unwrap();
        // 24 MB × 8 bits × 8 JJ ≈ 1.6 GJJ of L1 versus 0.33 GJJ of MACs:
        // memory dies dominate, which is why they are separate stacked
        // dies in Fig. 3a.
        assert!(spu.l1().junctions() > spu.mac_array().junctions());
    }

    #[test]
    fn dynamic_power_is_sub_watt() {
        let spu = Spu::baseline().unwrap();
        let p = spu.dynamic_power_w(&JosephsonJunction::nominal());
        // The paper's "100× less on-chip power" claim: a full SPU's MAC
        // array dissipates well under a watt at 4 K.
        assert!(p < 1.0, "got {p} W");
    }
}
