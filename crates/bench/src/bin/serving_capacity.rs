//! Serving studies: static capacity under per-token QoS budgets, the
//! scenario-driven dynamic-traffic views (frontier sweep, SCD-vs-GPU
//! trace replay), and the cluster-scale extensions (routing-policy study
//! across 4 blades, paged-KV fragmentation sweep, disaggregated
//! prefill/decode split, recorded-trace replay, cluster-cache
//! coordination, SLO-class goodput).
//!
//! With `--bench-json` it instead runs the simulation-core scaling
//! study (event-driven vs per-step at 10k/100k/1M diurnal requests) and
//! appends a snapshot keyed to the current git revision onto the
//! `BENCH_serving_core.json` trajectory in the current directory — the
//! baseline whose latest entry the CI bench-smoke job gates against.
//!
//! With `--telemetry-csv <path>` it additionally runs the telemetry
//! study and dumps its windowed diurnal series (cluster gauges,
//! counters and per-window tail sketches) as wide-row CSV to `<path>`
//! — the input for the plotting workflow in the README.
fn main() -> Result<(), optimus::OptimusError> {
    use scd_bench::{core_bench, extensions as ext, serving_experiments as srv};
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--telemetry-csv") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("serving_capacity: --telemetry-csv needs a path argument");
            std::process::exit(2);
        });
        let study = srv::telemetry_study()?;
        print!("{}", srv::render_telemetry(&study));
        std::fs::write(&path, &study.csv).map_err(|e| optimus::OptimusError::Serving {
            reason: format!("writing {path}: {e}"),
        })?;
        println!("\nwrote {} windowed rows to {path}", study.windows.len());
        return Ok(());
    }
    if std::env::args().any(|a| a == "--bench-json") {
        let rows = core_bench::core_scaling_study()?;
        print!("{}", core_bench::render_core_scaling(&rows));
        let existing = std::fs::read_to_string("BENCH_serving_core.json").ok();
        let json = core_bench::append_snapshot(existing.as_deref(), rows, &core_bench::git_rev());
        std::fs::write("BENCH_serving_core.json", &json).map_err(|e| {
            optimus::OptimusError::Serving {
                reason: format!("writing BENCH_serving_core.json: {e}"),
            }
        })?;
        println!("\nwrote BENCH_serving_core.json");
        return Ok(());
    }
    let hr = "=".repeat(72);
    println!("{}\n{hr}", ext::render_serving(&ext::serving_capacity()?));
    println!(
        "{}\n{hr}",
        srv::render_serving_frontier(&srv::scd_serving_frontier()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_serving_comparison(&srv::scd_vs_gpu_serving()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_cluster_routing(&srv::cluster_routing_study()?)
    );
    println!("{}\n{hr}", srv::render_paged_kv(&srv::paged_kv_study()?));
    println!(
        "{}\n{hr}",
        srv::render_disaggregation(&srv::disaggregation_study()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_recorded_trace(&srv::recorded_trace_study()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_prefix_caching(&srv::prefix_caching_study()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_cluster_cache(&srv::cluster_cache_study()?)
    );
    println!(
        "{}\n{hr}",
        srv::render_slo_classes(&srv::slo_class_study()?)
    );
    print!(
        "{}",
        srv::render_control_plane(&srv::control_plane_study()?)
    );
    Ok(())
}
