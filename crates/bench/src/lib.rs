//! # scd-bench — experiment harness for every table and figure
//!
//! One module per group of paper artifacts; each experiment is exposed
//! both as a library function (used by the tests and Criterion benches)
//! and as a runnable binary (`cargo run -p scd-bench --release --bin
//! <experiment>`). See `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub mod core_bench;
pub mod extensions;
pub mod inference_experiments;
pub mod l2_study;
pub mod serving_experiments;
pub mod spec_tables;
pub mod timeline;
pub mod training_experiments;
pub mod validation;
