//! Global-routing estimation over a placed design.
//!
//! PCL wires are transmission lines that must be routed "with targeted
//! inductance" (§II-B); inductance is proportional to length, so a net
//! whose placed length strays far from the target needs meanders or
//! re-buffering. This estimator routes every placed net with an L-shape,
//! builds a per-tile congestion map, and reports how many nets fall
//! outside the inductance window — the feedback signal a real P&R loop
//! would iterate on.

use crate::mapped::{MappedNetlist, MappedNode};
use crate::place::PlacementResult;
use serde::{Deserialize, Serialize};

/// Routing report over a placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingReport {
    /// Total routed wire length (grid units, L-shaped point-to-point).
    pub total_wirelength: f64,
    /// Demand of the most congested routing tile (wires crossing it).
    pub peak_congestion: u32,
    /// Mean tile demand.
    pub mean_congestion: f64,
    /// Nets whose length lies within the inductance window.
    pub nets_in_window: usize,
    /// Nets shorter than the window (need added meander inductance).
    pub nets_too_short: usize,
    /// Nets longer than the window (need re-buffering).
    pub nets_too_long: usize,
    /// Per-tile demand map (row-major, `grid × grid`).
    pub congestion: Vec<u32>,
    /// Grid side length.
    pub grid: usize,
}

impl RoutingReport {
    /// Fraction of nets inside the inductance window.
    #[must_use]
    pub fn window_yield(&self) -> f64 {
        let total = self.nets_in_window + self.nets_too_short + self.nets_too_long;
        if total == 0 {
            1.0
        } else {
            self.nets_in_window as f64 / total as f64
        }
    }
}

/// Inductance window for routed nets, expressed in grid-unit lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InductanceWindow {
    /// Minimum acceptable routed length.
    pub min_len: f64,
    /// Maximum acceptable routed length.
    pub max_len: f64,
}

impl Default for InductanceWindow {
    fn default() -> Self {
        // A JTL-coupled PCL connection tolerates roughly 0–8 cell pitches
        // before its inductance leaves the bias window.
        Self {
            min_len: 0.0,
            max_len: 8.0,
        }
    }
}

/// Routes every driver→sink connection of the placed design with an
/// L-shape (horizontal then vertical), accumulating tile demand.
#[must_use]
pub fn route(
    netlist: &MappedNetlist,
    placement: &PlacementResult,
    window: InductanceWindow,
) -> RoutingReport {
    let grid = placement.grid;
    let mut congestion = vec![0u32; grid * grid];
    let mut total_wirelength = 0.0;
    let (mut ok, mut short, mut long) = (0usize, 0usize, 0usize);

    let mark = |x: usize, y: usize, congestion: &mut Vec<u32>| {
        congestion[y * grid + x] = congestion[y * grid + x].saturating_add(1);
    };

    for (idx, node) in netlist.nodes().iter().enumerate() {
        let MappedNode::Cell { pins, .. } = node else {
            continue;
        };
        let (sx, sy) = placement.locations[idx];
        for p in pins {
            let (dx, dy) = placement.locations[p.node.index()];
            let len = (sx.abs_diff(dx) + sy.abs_diff(dy)) as f64;
            total_wirelength += len;
            if len < window.min_len {
                short += 1;
            } else if len > window.max_len {
                long += 1;
            } else {
                ok += 1;
            }
            // L-shape: horizontal leg at the driver row, vertical at the
            // sink column.
            let (x0, x1) = (dx.min(sx), dx.max(sx));
            for x in x0..=x1 {
                mark(x, dy, &mut congestion);
            }
            let (y0, y1) = (dy.min(sy), dy.max(sy));
            for y in y0..=y1 {
                mark(sx, y, &mut congestion);
            }
        }
    }

    let peak = congestion.iter().copied().max().unwrap_or(0);
    let mean = if congestion.is_empty() {
        0.0
    } else {
        congestion.iter().map(|&c| f64::from(c)).sum::<f64>() / congestion.len() as f64
    };
    RoutingReport {
        total_wirelength,
        peak_congestion: peak,
        mean_congestion: mean,
        nets_in_window: ok,
        nets_too_short: short,
        nets_too_long: long,
        congestion,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use crate::place::place;
    use crate::synth::synthesize;

    fn setup(width: usize, iters: u64) -> (MappedNetlist, PlacementResult) {
        let m = synthesize(&blocks::ripple_adder(width).unwrap())
            .unwrap()
            .mapped;
        let p = place(&m, iters, 9);
        (m, p)
    }

    #[test]
    fn annealed_placement_routes_better_than_raw() {
        let m = synthesize(&blocks::ripple_adder(16).unwrap())
            .unwrap()
            .mapped;
        let raw = place(&m, 0, 9);
        let annealed = place(&m, 30_000, 9);
        let w = InductanceWindow::default();
        let r_raw = route(&m, &raw, w);
        let r_annealed = route(&m, &annealed, w);
        assert!(r_annealed.total_wirelength <= r_raw.total_wirelength);
        assert!(r_annealed.window_yield() >= r_raw.window_yield());
    }

    #[test]
    fn congestion_map_is_consistent() {
        let (m, p) = setup(8, 5_000);
        let r = route(&m, &p, InductanceWindow::default());
        assert_eq!(r.congestion.len(), r.grid * r.grid);
        assert!(f64::from(r.peak_congestion) >= r.mean_congestion);
        let _ = m;
    }

    #[test]
    fn window_accounting_sums_to_net_count() {
        let (m, p) = setup(8, 5_000);
        let r = route(&m, &p, InductanceWindow::default());
        let pins: usize = m
            .nodes()
            .iter()
            .map(|n| match n {
                MappedNode::Cell { pins, .. } => pins.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(r.nets_in_window + r.nets_too_short + r.nets_too_long, pins);
        assert!(r.window_yield() <= 1.0);
    }

    #[test]
    fn tight_window_flags_long_nets() {
        let (m, p) = setup(8, 1_000);
        let tight = route(
            &m,
            &p,
            InductanceWindow {
                min_len: 0.0,
                max_len: 0.0,
            },
        );
        // With a zero-length window every non-coincident net is long.
        assert!(tight.nets_too_long > 0);
        assert!(tight.window_yield() < 1.0);
    }
}
