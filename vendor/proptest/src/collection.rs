//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies (stand-in for
/// `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
