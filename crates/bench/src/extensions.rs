//! Extension experiments beyond the paper's evaluation: its §VII future
//! work (multi-blade scaling, huge-JSRAM inference), an energy projection
//! for the §I motivation, and ablations of the design choices DESIGN.md
//! calls out.

use llm_workload::model::{ModelZoo, Precision};
use llm_workload::parallelism::Parallelism;
use llm_workload::taskgraph::{decode_step, training_step, weights_per_unit_bytes};
use optimus::{
    estimate_energy, weak_scaling_sweep, EnergyModel, InferenceEstimator, OptimusError, Placement,
    RequestShape, ScalingPoint, SpeedupStudy,
};
use rayon::prelude::*;
use scd_arch::blade::{Blade, SnuConfig};
use scd_arch::gpu::GpuSystem;
use scd_arch::spu::SpuConfig;
use scd_eda::blocks;
use scd_eda::flow::StarlingFlow;
use scd_mem::datalink::Datalink;
use scd_mem::dram::CryoDramBlock;
use scd_mem::level::LevelKind;
use scd_tech::units::{Bandwidth, TimeInterval};
use scd_tech::Technology;
use serde::{Deserialize, Serialize};

/// Runs the §VII multi-blade weak-scaling study.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn multi_blade_scaling() -> Result<Vec<ScalingPoint>, OptimusError> {
    weak_scaling_sweep(&ModelZoo::gpt3_175b(), 64, &[1, 2, 4, 8])
}

/// Renders the scaling study.
#[must_use]
pub fn render_multi_blade(points: &[ScalingPoint]) -> String {
    let mut out = String::from(
        "§VII outlook: multi-blade weak scaling (GPT3-175B, B=64 per blade)\n\n\
         blades  SPUs   step(s)  system PFLOP/s  efficiency\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<8}{:<7}{:>7.3}{:>15.1}{:>11.3}\n",
            p.blades, p.spus, p.step_time_s, p.system_pflops, p.efficiency
        ));
    }
    out
}

/// One row of the huge-JSRAM inference study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsramStudyRow {
    /// Model name.
    pub model: String,
    /// Per-unit weight footprint (GB).
    pub weights_gb: f64,
    /// Whether the whole model (all TP shards) fits the 32 GB L2.
    pub fits_l2: bool,
    /// Decode latency with weights in cryo-DRAM (s).
    pub dram_s: f64,
    /// Decode latency with weights resident in the enlarged JSRAM L2 (s).
    pub jsram_s: f64,
    /// Speed-up.
    pub speedup: f64,
}

/// Runs the §VII "huge JSRAM capacity" study: a hypothetical blade whose
/// SNU stacks provide 32 GB of shared JSRAM lets small-model weights live
/// entirely on-chip, removing the DRAM stream from decode.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn jsram_inference_study() -> Result<Vec<JsramStudyRow>, OptimusError> {
    let big_l2 = SnuConfig {
        l2_stacks: 160,
        l2_capacity_bytes: 32 << 30,
        l2_bandwidth_per_spu: Bandwidth::from_tbps(24.0),
        l2_latency: TimeInterval::from_ns(10.0),
    };
    let blade = Blade::new(
        Technology::scd_nbtin(),
        SpuConfig::default(),
        64,
        big_l2,
        CryoDramBlock::blade_baseline(),
        Datalink::paper_peak(),
    )?;
    let shape = RequestShape::paper_io(8);
    let models = [
        ModelZoo::llama2_7b(),
        ModelZoo::llama2_13b(),
        ModelZoo::llama_70b(),
    ];
    models
        .par_iter()
        .map(|model| {
            let par = Parallelism::pure_tp(8)?;
            let accel = blade
                .accelerator()
                .with_dram_bandwidth(Bandwidth::from_tbps(16.0));
            let dram = InferenceEstimator::new(accel.clone(), blade.interconnect())
                .estimate(model, &par, shape)?;
            let weights_resident = Placement {
                weights: LevelKind::L2,
                kv: Some(LevelKind::L2),
            };
            let jsram = InferenceEstimator::new(accel, blade.interconnect())
                .with_placement(weights_resident)
                .estimate(model, &par, shape)?;
            let per_unit = weights_per_unit_bytes(model, &par, Precision::Bf16);
            Ok(JsramStudyRow {
                model: model.name.clone(),
                weights_gb: per_unit / 1e9,
                fits_l2: per_unit * f64::from(par.units()) <= (32u64 << 30) as f64,
                dram_s: dram.latency_s(),
                jsram_s: jsram.latency_s(),
                speedup: dram.latency_s() / jsram.latency_s(),
            })
        })
        .collect()
}

/// Renders the JSRAM study.
#[must_use]
pub fn render_jsram_study(rows: &[JsramStudyRow]) -> String {
    let mut out = String::from(
        "§VII outlook: weights resident in a 32 GB JSRAM L2 (B=8, I/O 200/200, TP=8)\n\n\
         model        weights/unit(GB)  fits?  DRAM(s)  JSRAM(s)  speed-up\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13}{:>16.2}{:>7}{:>9.3}{:>10.3}{:>9.2}x\n",
            r.model,
            r.weights_gb,
            if r.fits_l2 { "yes" } else { "no" },
            r.dram_s,
            r.jsram_s,
            r.speedup
        ));
    }
    out
}

/// One row of the energy projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Workload label.
    pub workload: String,
    /// SCD device-level energy (J).
    pub scd_device_j: f64,
    /// SCD wall-plug energy including 4 K cooling (J).
    pub scd_wall_j: f64,
    /// GPU energy (J; room temperature, device ≈ wall).
    pub gpu_j: f64,
    /// Device-level advantage.
    pub device_ratio: f64,
    /// Wall-plug advantage.
    pub wall_ratio: f64,
}

/// Projects per-step training energy and per-request inference energy
/// for both systems (per processing unit).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn energy_projection() -> Result<Vec<EnergyRow>, OptimusError> {
    let spu = Blade::baseline()
        .accelerator()
        .with_dram_bandwidth(Bandwidth::from_tbps(16.0));
    let gpu = GpuSystem::h100_cluster(64).accelerator().clone();

    let train_graph = training_step(
        &ModelZoo::gpt3_76b(),
        &Parallelism::training_baseline(),
        64,
        2048,
        Precision::Bf16,
    )?;
    let decode_graph = decode_step(
        &ModelZoo::llama_405b(),
        &Parallelism::pure_tp(64)?,
        8,
        400,
        Precision::Bf16,
    )?;
    [
        ("GPT3-76B train step".to_owned(), &train_graph),
        ("Llama-405B decode token".to_owned(), &decode_graph),
    ]
    .into_par_iter()
    .map(|(label, graph)| {
        let e_scd = estimate_energy(&spu, graph, &EnergyModel::scd(), Placement::dram())?;
        let e_gpu = estimate_energy(&gpu, graph, &EnergyModel::h100(), Placement::dram())?;
        Ok(EnergyRow {
            workload: label,
            scd_device_j: e_scd.total_j,
            scd_wall_j: e_scd.wall_plug_j,
            gpu_j: e_gpu.total_j,
            device_ratio: e_gpu.total_j / e_scd.total_j,
            wall_ratio: e_gpu.total_j / e_scd.wall_plug_j,
        })
    })
    .collect()
}

/// Renders the energy projection.
#[must_use]
pub fn render_energy(rows: &[EnergyRow]) -> String {
    let mut out = String::from(
        "Energy projection per processing unit (device level + 4 K cooling)\n\n\
         workload                  SCD dev(J)  SCD wall(J)    GPU(J)  dev adv  wall adv\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<26}{:>10.4}{:>13.4}{:>10.3}{:>8.0}x{:>9.2}x\n",
            r.workload, r.scd_device_j, r.scd_wall_j, r.gpu_j, r.device_ratio, r.wall_ratio
        ));
    }
    out
}

/// One row of the serving-capacity study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRow {
    /// Per-token latency budget (ms).
    pub budget_ms: f64,
    /// Largest batch the SCD blade sustains within budget (0 = none).
    pub scd_batch: u32,
    /// SCD serving throughput at that batch (tokens/s).
    pub scd_tokens_per_s: f64,
    /// Largest batch 64 H100s sustain within budget.
    pub gpu_batch: u32,
    /// GPU serving throughput at that batch (tokens/s).
    pub gpu_tokens_per_s: f64,
}

/// Extension of Fig. 7b: for per-token QoS budgets, how many queries can
/// each system batch, and what serving throughput results (Llama-405B,
/// I/O 200/200, TP=64).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn serving_capacity() -> Result<Vec<ServingRow>, OptimusError> {
    use optimus::plan_serving;
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let study = SpeedupStudy::paper_baseline();
    let scd = study.scd_inference();
    let gpu = study.gpu_inference();
    [2.0, 5.0, 10.0, 25.0]
        .into_par_iter()
        .map(|budget_ms| {
            let b = budget_ms / 1e3;
            let s = plan_serving(&scd, &model, &par, (200, 200), 128, b)?;
            let g = plan_serving(&gpu, &model, &par, (200, 200), 128, b)?;
            Ok(ServingRow {
                budget_ms,
                scd_batch: s.chosen.map_or(0, |p| p.batch),
                scd_tokens_per_s: s.chosen.map_or(0.0, |p| p.tokens_per_s),
                gpu_batch: g.chosen.map_or(0, |p| p.batch),
                gpu_tokens_per_s: g.chosen.map_or(0.0, |p| p.tokens_per_s),
            })
        })
        .collect()
}

/// Renders the serving-capacity study.
#[must_use]
pub fn render_serving(rows: &[ServingRow]) -> String {
    let mut out = String::from(
        "Serving capacity under per-token QoS budgets (Llama-405B, TP=64)\n\n\
         budget(ms)  SCD batch  SCD tok/s  GPU batch  GPU tok/s\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:<11}{:>9.0}{:>11}{:>11.0}\n",
            r.budget_ms, r.scd_batch, r.scd_tokens_per_s, r.gpu_batch, r.gpu_tokens_per_s
        ));
    }
    out
}

/// One row of the adder ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdderAblationRow {
    /// Bus width.
    pub width: usize,
    /// Ripple total JJ / phases.
    pub ripple: (u64, u32),
    /// Kogge–Stone total JJ / phases.
    pub kogge_stone: (u64, u32),
}

/// Ablation: ripple vs Kogge–Stone adders across widths — the
/// junctions-vs-phase-depth trade-off that motivated prefix adders in
/// the MAC datapath.
///
/// # Errors
///
/// Propagates flow failures.
pub fn adder_ablation() -> Result<Vec<AdderAblationRow>, scd_eda::EdaError> {
    let flow = StarlingFlow::new(Technology::scd_nbtin()).with_verify_words(4);
    [8usize, 16, 32]
        .into_par_iter()
        .map(|width| {
            let ripple = flow.compile(&blocks::ripple_adder(width)?)?.report;
            let ks = flow.compile(&blocks::kogge_stone_adder(width)?)?.report;
            Ok(AdderAblationRow {
                width,
                ripple: (ripple.total_junctions, ripple.pipeline_depth),
                kogge_stone: (ks.total_junctions, ks.pipeline_depth),
            })
        })
        .collect()
}

/// Renders the adder ablation.
#[must_use]
pub fn render_adder_ablation(rows: &[AdderAblationRow]) -> String {
    let mut out = String::from(
        "Ablation: ripple vs Kogge–Stone adders (total JJ incl. balancing)\n\n\
         width   ripple JJ  phases     KS JJ  phases\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8}{:>10}{:>8}{:>10}{:>8}\n",
            r.width, r.ripple.0, r.ripple.1, r.kogge_stone.0, r.kogge_stone.1
        ));
    }
    out
}

/// One row of the transfer-window ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowAblationRow {
    /// Outstanding requests in the cryo-DRAM window.
    pub outstanding: u32,
    /// Effective bandwidth cap at 30 ns (TB/s).
    pub cap_tbps: f64,
    /// Fig. 7-style latency at 16 TB/s wire bandwidth (s).
    pub latency_s: f64,
}

/// Ablation: how the datalink's outstanding-request window sets the
/// Fig. 7 saturation point (DESIGN.md's Little's-law model).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn window_ablation() -> Result<Vec<WindowAblationRow>, OptimusError> {
    use scd_mem::transfer::TransferModel;
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let shape = RequestShape::paper_io(8);
    let blade = Blade::baseline();
    [16u32, 64, 256, 1024]
        .into_par_iter()
        .map(|outstanding| {
            let tm = TransferModel {
                burst_bytes: 4096,
                max_outstanding: outstanding,
            };
            let mut accel = blade
                .accelerator()
                .with_dram_bandwidth(Bandwidth::from_tbps(16.0));
            if let Some(level) = accel.hierarchy.level_mut(LevelKind::MainMemory) {
                level.transfer = tm;
            }
            let cap = tm
                .effective_bandwidth(Bandwidth::from_tbps(16.0), TimeInterval::from_ns(30.0))
                .tbps();
            let r = InferenceEstimator::new(accel, blade.interconnect())
                .estimate(&model, &par, shape)?;
            Ok(WindowAblationRow {
                outstanding,
                cap_tbps: cap,
                latency_s: r.latency_s(),
            })
        })
        .collect()
}

/// Renders the window ablation.
#[must_use]
pub fn render_window_ablation(rows: &[WindowAblationRow]) -> String {
    let mut out = String::from(
        "Ablation: cryo-DRAM request window vs Fig. 7 saturation (16 TB/s, 30 ns)\n\n\
         outstanding  eff. BW cap(TB/s)  latency(s)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13}{:>17.2}{:>12.3}\n",
            r.outstanding, r.cap_tbps, r.latency_s
        ));
    }
    out
}

/// One row of the fabric ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricAblationRow {
    /// Model name.
    pub model: String,
    /// Speed-up with the tiered (NVLink+IB) GPU fabric.
    pub tiered_speedup: f64,
    /// Speed-up if the GPU cluster had flat NVLink everywhere.
    pub flat_speedup: f64,
}

/// Ablation: how much of the Fig. 8 inference speed-up comes from the
/// GPU cluster's tiered network (vs a hypothetical flat-NVLink fabric).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fabric_ablation() -> Result<Vec<FabricAblationRow>, OptimusError> {
    use scd_arch::{Fabric, InterconnectSpec};
    let study = SpeedupStudy::paper_baseline();
    let shape = RequestShape::paper_io(8);
    let flat_fabric = Fabric::single(InterconnectSpec::nvlink());
    [ModelZoo::llama_70b(), ModelZoo::llama_405b()]
        .into_par_iter()
        .map(|model| {
            let par = Parallelism::pure_tp(64)?;
            let tiered = study.inference(&model, &par, shape)?;
            let gpu_flat = InferenceEstimator::new(
                GpuSystem::h100_cluster(64).accelerator().clone(),
                flat_fabric.clone(),
            )
            .estimate(&model, &par, shape)?;
            Ok(FabricAblationRow {
                model: model.name.clone(),
                tiered_speedup: tiered.speedup,
                flat_speedup: gpu_flat.latency_s() / tiered.scd.latency_s(),
            })
        })
        .collect()
}

/// Renders the fabric ablation.
#[must_use]
pub fn render_fabric_ablation(rows: &[FabricAblationRow]) -> String {
    let mut out = String::from(
        "Ablation: GPU fabric model vs Fig. 8 speed-up (B=8, 16 TB/s per SPU)\n\n\
         model        tiered NVLink+IB  flat NVLink (hypothetical)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13}{:>15.1}x{:>21.1}x\n",
            r.model, r.tiered_speedup, r.flat_speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_blade_scales_efficiently() {
        let pts = multi_blade_scaling().unwrap();
        assert_eq!(pts.last().unwrap().blades, 8);
        assert!(pts.last().unwrap().efficiency > 0.85);
        assert!(render_multi_blade(&pts).contains("efficiency"));
    }

    #[test]
    fn jsram_residency_speeds_small_models() {
        let rows = jsram_inference_study().unwrap();
        // llama2-7B/13B fit the 32 GB L2 in full and gain; llama-70B does
        // not fit (its row is the hypothetical upper bound).
        assert!(rows[0].fits_l2 && rows[1].fits_l2 && !rows[2].fits_l2);
        for r in &rows[..2] {
            assert!(r.speedup > 1.3, "{}: {:.2}", r.model, r.speedup);
        }
        assert!(render_jsram_study(&rows).contains("JSRAM"));
    }

    #[test]
    fn energy_projection_favors_scd() {
        let rows = energy_projection().unwrap();
        for r in &rows {
            assert!(
                r.device_ratio > 10.0,
                "{}: {:.1}",
                r.workload,
                r.device_ratio
            );
            assert!(r.wall_ratio > 1.0, "{}: {:.2}", r.workload, r.wall_ratio);
        }
        assert!(render_energy(&rows).contains("wall adv"));
    }

    #[test]
    fn serving_capacity_favors_scd() {
        let rows = serving_capacity().unwrap();
        // At every budget the SCD blade batches at least as much; at some
        // budget it strictly wins.
        assert!(rows.iter().all(|r| r.scd_batch >= r.gpu_batch));
        assert!(rows.iter().any(|r| r.scd_batch > r.gpu_batch));
        assert!(render_serving(&rows).contains("QoS"));
    }

    #[test]
    fn adder_ablation_shows_tradeoff() {
        let rows = adder_ablation().unwrap();
        // At width 8 the prefix network's setup stages still dominate; by
        // 16 bits Kogge–Stone is decisively shallower.
        for r in rows.iter().filter(|r| r.width >= 16) {
            assert!(
                r.kogge_stone.1 < r.ripple.1,
                "KS must be shallower at width {}",
                r.width
            );
        }
        // The depth gap must widen with width.
        let gap = |r: &AdderAblationRow| r.ripple.1 as i64 - r.kogge_stone.1 as i64;
        assert!(gap(&rows[2]) > gap(&rows[0]));
    }

    #[test]
    fn window_ablation_monotone() {
        let rows = window_ablation().unwrap();
        for w in rows.windows(2) {
            assert!(w[1].cap_tbps >= w[0].cap_tbps);
            assert!(w[1].latency_s <= w[0].latency_s + 1e-9);
        }
    }

    #[test]
    fn fabric_ablation_shows_comm_contribution() {
        let rows = fabric_ablation().unwrap();
        for r in &rows {
            assert!(
                r.tiered_speedup > r.flat_speedup,
                "{}: tiered {:.1} vs flat {:.1}",
                r.model,
                r.tiered_speedup,
                r.flat_speedup
            );
        }
    }
}
