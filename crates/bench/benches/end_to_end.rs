//! Criterion bench: full paper experiments end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use llm_workload::model::ModelZoo;
use llm_workload::parallelism::Parallelism;
use optimus::{RequestShape, SpeedupStudy};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let study = SpeedupStudy::paper_baseline();
    let model = ModelZoo::gpt3_76b();
    let par = Parallelism::new(8, 8, 1).expect("valid");
    c.bench_function("e2e/fig6_training_point", |b| {
        b.iter(|| study.training(black_box(&model), &par, 64))
    });
    let llama = ModelZoo::llama_70b();
    let tp = Parallelism::pure_tp(64).expect("valid");
    c.bench_function("e2e/fig8_inference_point", |b| {
        b.iter(|| study.inference(black_box(&llama), &tp, RequestShape::paper_io(8)))
    });
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
