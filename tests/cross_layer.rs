//! Integration: the bottom-up derivation chain of the paper — device data
//! (scd-tech) → compiled logic (scd-eda) → architecture (scd-arch) →
//! performance projection (optimus) — must be self-consistent.

use llm_workload::{ModelZoo, Parallelism};
use optimus::TrainingEstimator;
use scd_arch::{Blade, MacArray};
use scd_eda::blocks;
use scd_eda::flow::StarlingFlow;
use scd_tech::units::Bandwidth;
use scd_tech::Technology;

#[test]
fn compiled_mac_supports_the_architectural_assumption() {
    // The architecture layer assumes 8 kJJ per MAC; the EDA flow must
    // produce a datapath in that class.
    let flow = StarlingFlow::new(Technology::scd_nbtin()).with_verify_words(8);
    let mac = blocks::bf16_mac().expect("mac generator");
    let compiled = flow.compile(&mac).expect("mac compiles");
    let logic = compiled.report.logic_junctions;
    assert!(
        (5_000..=12_000).contains(&logic),
        "compiled MAC logic {logic} JJ vs the 8 kJJ architectural budget"
    );
}

#[test]
fn mac_array_peak_flows_into_blade_accelerator() {
    let tech = Technology::scd_nbtin();
    let array = MacArray::spu_baseline(&tech).expect("array derives");
    let blade = Blade::baseline();
    let accel = blade.accelerator();
    let rel = (accel.peak_flops - array.peak_flops()).abs() / array.peak_flops();
    assert!(rel < 1e-9, "blade must expose the derived MAC-array peak");
}

#[test]
fn compiled_mac_latency_fits_pipeline_assumption() {
    // The MAC array issues one op per clock; the compiled datapath is
    // fully pipelined so its *depth* may exceed one cycle, but each phase
    // must fit the 30 GHz clock by construction.
    let flow = StarlingFlow::new(Technology::scd_nbtin()).without_verification();
    let mac = blocks::bf16_mac().expect("mac generator");
    let compiled = flow.compile(&mac).expect("mac compiles");
    assert!(compiled.report.pipeline_depth > 10);
    let cycle_ns = 1.0 / 30.0;
    let expected = f64::from(compiled.report.pipeline_depth) * cycle_ns;
    assert!((compiled.report.latency.ns() - expected).abs() < 1e-9);
}

#[test]
fn end_to_end_projection_runs_on_derived_architecture() {
    let blade = Blade::baseline();
    let est = TrainingEstimator::new(
        blade
            .accelerator()
            .with_dram_bandwidth(Bandwidth::from_tbps(16.0)),
        blade.interconnect(),
    );
    let r = est
        .estimate(&ModelZoo::gpt3_76b(), &Parallelism::training_baseline(), 64)
        .expect("estimation succeeds");
    // Achieved throughput cannot exceed the utilization-capped peak.
    let cap = blade.accelerator().achievable_flops() / 1e15;
    assert!(r.pflops_per_unit() <= cap + 1e-9);
    assert!(r.pflops_per_unit() > 0.5, "got {}", r.pflops_per_unit());
}

#[test]
fn umbrella_crate_reexports_work_together() {
    use scd_perf::llm_workload::ModelZoo as Zoo;
    use scd_perf::optimus::SpeedupStudy;
    use scd_perf::scd_arch::Blade as B;

    let blade = B::baseline();
    assert_eq!(blade.spus(), 64);
    let study = SpeedupStudy::paper_baseline();
    let c = study
        .training(
            &Zoo::gpt3_18b(),
            &scd_perf::llm_workload::Parallelism::training_baseline(),
            64,
        )
        .expect("study runs");
    assert!(c.speedup > 1.0);
}
