//! Experiments F7 (+insets), F8a, F8b: LLM-inference projections.

use llm_workload::kvcache::KvCache;
use llm_workload::model::{ModelZoo, Precision, TransformerConfig};
use llm_workload::parallelism::Parallelism;
use optimus::{OptimusError, RequestShape, SpeedupStudy};
use rayon::prelude::*;
use scd_tech::units::{Bandwidth, TimeInterval};
use serde::{Deserialize, Serialize};

/// A 64-unit parallelization valid for `model` (pure TP when the head
/// count allows, TP×PP otherwise — MoE-132B has 48 heads).
///
/// # Errors
///
/// Propagates plan-construction failures.
pub fn blade_parallelism(model: &TransformerConfig) -> Result<Parallelism, OptimusError> {
    if model.heads.is_multiple_of(64) && model.ffn_hidden.is_multiple_of(64) {
        Ok(Parallelism::pure_tp(64)?)
    } else {
        Ok(Parallelism::new(16, 4, 1)?)
    }
}

/// One point of the Fig. 7 bandwidth sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    /// DRAM bandwidth per SPU (TB/s).
    pub bw_tbps: f64,
    /// End-to-end inference latency (s).
    pub latency_s: f64,
}

/// Runs the Fig. 7 sweep: Llama-405B, B=8, I/O 200/200, TP=64, 30 ns.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig7_sweep() -> Result<Vec<Fig7Point>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let shape = RequestShape::paper_io(8);
    [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .into_par_iter()
        .map(|bw| {
            let study =
                SpeedupStudy::paper_baseline().with_dram_bandwidth(Bandwidth::from_tbps(bw));
            let r = study.scd_inference().estimate(&model, &par, shape)?;
            Ok(Fig7Point {
                bw_tbps: bw,
                latency_s: r.latency_s(),
            })
        })
        .collect()
}

/// Renders Fig. 7.
#[must_use]
pub fn render_fig7(points: &[Fig7Point]) -> String {
    let mut out = String::from(
        "Fig. 7: Llama-405B inference latency vs DRAM bandwidth per SPU\n\
         (B=8, bf16, I/O 200/200, TP=64, DRAM latency 30 ns)\n\n\
         BW(TB/s)  latency(s)\n",
    );
    for p in points {
        out.push_str(&format!("{:>8.1}{:>12.3}\n", p.bw_tbps, p.latency_s));
    }
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        out.push_str(&format!(
            "\nspeed-up {:.1} TB/s → {:.1} TB/s: {:.1}x\n",
            first.bw_tbps,
            last.bw_tbps,
            first.latency_s / last.latency_s
        ));
    }
    out
}

/// One point of the Fig. 7 inset (a) latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7aPoint {
    /// DRAM latency (ns).
    pub latency_ns: f64,
    /// Achieved PFLOP/s per SPU.
    pub pflops_per_spu: f64,
}

/// Runs Fig. 7 inset (a): DRAM latency 10–200 ns at 16 TB/s.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig7a_sweep() -> Result<Vec<Fig7aPoint>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let shape = RequestShape::paper_io(8);
    [10.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0]
        .into_par_iter()
        .map(|lat| {
            let study =
                SpeedupStudy::paper_baseline().with_dram_latency(TimeInterval::from_ns(lat));
            let r = study.scd_inference().estimate(&model, &par, shape)?;
            Ok(Fig7aPoint {
                latency_ns: lat,
                pflops_per_spu: r.pflops_per_unit(),
            })
        })
        .collect()
}

/// Renders Fig. 7 inset (a).
#[must_use]
pub fn render_fig7a(points: &[Fig7aPoint]) -> String {
    let mut out = String::from(
        "Fig. 7 inset (a): throughput vs DRAM latency (16 TB/s per SPU, B=8)\n\n\
         latency(ns)  PFLOP/s/SPU\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>11.0}{:>13.4}\n",
            p.latency_ns, p.pflops_per_spu
        ));
    }
    out
}

/// One point of the Fig. 7 inset (b) batch sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7bPoint {
    /// Batch size.
    pub batch: u32,
    /// SCD latency (s).
    pub scd_latency_s: f64,
    /// SCD throughput (PFLOP/s per SPU).
    pub scd_pflops: f64,
    /// GPU latency (s).
    pub gpu_latency_s: f64,
    /// GPU throughput (PFLOP/s per GPU).
    pub gpu_pflops: f64,
}

/// Runs Fig. 7 inset (b): latency vs throughput as B = 4…128.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig7b_sweep() -> Result<Vec<Fig7bPoint>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let study = SpeedupStudy::paper_baseline();
    [4u32, 8, 16, 32, 64, 128]
        .into_par_iter()
        .map(|batch| {
            let shape = RequestShape::paper_io(batch);
            let scd = study.scd_inference().estimate(&model, &par, shape)?;
            let gpu = study.gpu_inference().estimate(&model, &par, shape)?;
            Ok(Fig7bPoint {
                batch,
                scd_latency_s: scd.latency_s(),
                scd_pflops: scd.pflops_per_unit(),
                gpu_latency_s: gpu.latency_s(),
                gpu_pflops: gpu.pflops_per_unit(),
            })
        })
        .collect()
}

/// Renders Fig. 7 inset (b).
#[must_use]
pub fn render_fig7b(points: &[Fig7bPoint]) -> String {
    let mut out = String::from(
        "Fig. 7 inset (b): latency vs throughput while B varies (16 TB/s)\n\n\
         B     SPU lat(s)  SPU PFLOP/s   GPU lat(s)  GPU PFLOP/s\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<6}{:>10.3}{:>13.4}{:>13.3}{:>13.4}\n",
            p.batch, p.scd_latency_s, p.scd_pflops, p.gpu_latency_s, p.gpu_pflops
        ));
    }
    out
}

/// One bar of Fig. 8a.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8aRow {
    /// Model name.
    pub model: String,
    /// Parallelization used on the 64 units.
    pub parallelism: String,
    /// Blade-vs-64-GPU inference speed-up.
    pub speedup: f64,
    /// SCD latency (s).
    pub scd_latency_s: f64,
    /// GPU latency (s).
    pub gpu_latency_s: f64,
}

/// Runs Fig. 8a: single-blade inference speed-up for three models.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig8a_rows() -> Result<Vec<Fig8aRow>, OptimusError> {
    let study = SpeedupStudy::paper_baseline();
    let shape = RequestShape::paper_io(8);
    [
        ModelZoo::moe_132b(),
        ModelZoo::llama_70b(),
        ModelZoo::llama_405b(),
    ]
    .into_par_iter()
    .map(|model| {
        let par = blade_parallelism(&model)?;
        let c = study.inference(&model, &par, shape)?;
        Ok(Fig8aRow {
            model: model.name.clone(),
            parallelism: par.to_string(),
            speedup: c.speedup,
            scd_latency_s: c.scd.latency_s(),
            gpu_latency_s: c.gpu.latency_s(),
        })
    })
    .collect()
}

/// Renders Fig. 8a.
#[must_use]
pub fn render_fig8a(rows: &[Fig8aRow]) -> String {
    let mut out = String::from(
        "Fig. 8a: single-blade inference speed-up vs 64 H100s\n\
         (B=8, bf16, I/O 200/200, 16 TB/s per SPU, 30 ns)\n\n\
         model          parallelism       speed-up  SPU lat(s)  GPU lat(s)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15}{:<18}{:>7.1}x{:>12.3}{:>12.3}\n",
            r.model, r.parallelism, r.speedup, r.scd_latency_s, r.gpu_latency_s
        ));
    }
    out
}

/// One point of Fig. 8b.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8bPoint {
    /// Batch size.
    pub batch: u32,
    /// Inference speed-up at this batch.
    pub speedup: f64,
    /// KV-cache size at the provisioned context, in TB.
    pub kv_cache_tb: f64,
    /// Whether the KV cache still fits the 64-GPU memory (5 TB).
    pub fits_gpu_memory: bool,
}

/// Runs Fig. 8b: speed-up and KV-cache size vs batch for Llama-405B.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig8b_sweep() -> Result<Vec<Fig8bPoint>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let study = SpeedupStudy::paper_baseline();
    let gpu_capacity_tb = study.gpus().total_memory_bytes() as f64 / 1e12;
    [4u32, 8, 16, 32, 64, 128]
        .into_par_iter()
        .map(|batch| {
            let c = study.inference(&model, &par, RequestShape::paper_io(batch))?;
            // Fig. 8b plots the cache at the provisioned context window.
            let kv = KvCache {
                batch,
                seq_len: model.max_context,
                precision: Precision::Bf16,
            }
            .bytes_mha(&model)
                / 1e12;
            Ok(Fig8bPoint {
                batch,
                speedup: c.speedup,
                kv_cache_tb: kv,
                fits_gpu_memory: kv < gpu_capacity_tb,
            })
        })
        .collect()
}

/// Renders Fig. 8b.
#[must_use]
pub fn render_fig8b(points: &[Fig8bPoint]) -> String {
    let mut out = String::from(
        "Fig. 8b: Llama-405B speed-up and KV-cache size vs batch\n\
         (64-GPU capacity reference: 5 TB)\n\n\
         B     speed-up  KV cache(TB)  fits 64-GPU HBM?\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<6}{:>7.1}x{:>13.2}{:>15}\n",
            p.batch,
            p.speedup,
            p.kv_cache_tb,
            if p.fits_gpu_memory { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_latency_falls_17x_ish() {
        let pts = fig7_sweep().unwrap();
        let overall = pts.first().unwrap().latency_s / pts.last().unwrap().latency_s;
        assert!((8.0..30.0).contains(&overall), "got {overall:.1}");
        assert!(render_fig7(&pts).contains("speed-up"));
    }

    #[test]
    fn fig7a_monotone_decline() {
        let pts = fig7a_sweep().unwrap();
        for w in pts.windows(2) {
            assert!(w[1].pflops_per_spu < w[0].pflops_per_spu);
        }
    }

    #[test]
    fn fig7b_throughput_latency_tradeoff() {
        let pts = fig7b_sweep().unwrap();
        for w in pts.windows(2) {
            assert!(w[1].scd_pflops > w[0].scd_pflops);
            assert!(w[1].scd_latency_s > w[0].scd_latency_s);
        }
    }

    #[test]
    fn fig8a_order_matches_paper() {
        // Paper: Llama-70B benefits most (max communication fraction).
        let rows = fig8a_rows().unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.model.contains(n)).unwrap().speedup;
        assert!(by_name("70B") > by_name("405B"));
        assert!(by_name("405B") > by_name("MoE"));
        for r in &rows {
            assert!(r.speedup > 4.0, "{}: {:.1}", r.model, r.speedup);
        }
    }

    #[test]
    fn fig8b_kv_cache_hits_gpu_capacity_at_128() {
        let pts = fig8b_sweep().unwrap();
        let last = pts.last().unwrap();
        assert_eq!(last.batch, 128);
        assert!(
            (3.5..5.5).contains(&last.kv_cache_tb),
            "got {:.2} TB",
            last.kv_cache_tb
        );
        // Speed-up is robust across batch sizes (order of magnitude).
        for p in &pts {
            assert!(p.speedup > 5.0);
        }
        // ... and declines gently at large batch (compute ratio rises).
        assert!(pts.last().unwrap().speedup < pts.first().unwrap().speedup);
    }
}
