//! # scd-noc — discrete-event simulator for the SCD blade interconnect
//!
//! The 2D-torus network of *"A System Level Performance Evaluation for
//! Superconducting Digital Systems"* (Kundu et al., DATE 2025), Fig. 3:
//! an 8×8 array of SPUs joined by their local hierarchical-crossbar
//! switches over 73 TB/s chip-to-chip links.
//!
//! * [`topology`] — torus coordinates, wraparound dimension-order routing.
//! * [`switch`] — the two-level MUX-crossbar switch model.
//! * [`sim`] — virtual-cut-through discrete-event simulation with link
//!   contention.
//! * [`collective`] — ring all-reduce / p2p schedules, both simulated and
//!   closed-form; used to validate the `optimus` communication model.
//! * [`traffic`] — synthetic load generators (uniform, transpose, ring).
//!
//! # Examples
//!
//! ```
//! use scd_noc::collective::{analytical_ring_all_reduce, simulate_ring_all_reduce};
//! use scd_noc::sim::NocConfig;
//! use scd_noc::topology::Torus;
//!
//! # fn main() -> Result<(), scd_noc::NocError> {
//! let torus = Torus::blade_8x8();
//! let cfg = NocConfig::blade_baseline();
//! let sim = simulate_ring_all_reduce(&torus, cfg, 1.0e6)?;
//! let hop = (cfg.router_delay_ps + cfg.wire_delay_ps) as f64 * 1e-12;
//! let model = analytical_ring_all_reduce(64, 1.0e6, cfg.link_bytes_per_s, hop);
//! let ratio = sim.makespan_ps as f64 * 1e-12 / model;
//! assert!(ratio > 0.5 && ratio < 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collective;
pub mod error;
pub mod sim;
pub mod switch;
pub mod topology;
pub mod traffic;

pub use error::NocError;
pub use sim::{Message, NocConfig, TorusSim};
pub use switch::HierarchicalSwitch;
pub use topology::{Direction, NodeId, Torus};
