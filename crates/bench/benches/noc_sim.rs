//! Criterion bench: the discrete-event torus simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use scd_noc::collective::simulate_ring_all_reduce;
use scd_noc::sim::NocConfig;
use scd_noc::topology::Torus;
use scd_noc::traffic::{run_traffic, TrafficPattern};
use std::hint::black_box;

fn bench_noc(c: &mut Criterion) {
    let torus = Torus::blade_8x8();
    let cfg = NocConfig::blade_baseline();
    c.bench_function("noc/ring_all_reduce_64mb", |b| {
        b.iter(|| simulate_ring_all_reduce(black_box(&torus), cfg, 64.0e6))
    });
    c.bench_function("noc/uniform_traffic_256msgs", |b| {
        b.iter(|| {
            run_traffic(
                black_box(&torus),
                cfg,
                TrafficPattern::UniformRandom,
                4096.0,
                4,
                1000,
                7,
            )
        })
    });
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
