//! Sampling helpers (`Index`).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index into a not-yet-known collection (stand-in for
/// `proptest::sample::Index`): stores a raw draw and projects it onto any
/// slice with a modulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Projects the stored draw onto `slice`. Panics on an empty slice,
    /// exactly like real proptest.
    #[must_use]
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Index::get on an empty slice");
        &slice[self.0 % slice.len()]
    }

    /// The equivalent index into a collection of length `len`.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index with len 0");
        self.0 % len
    }
}

/// Canonical strategy for [`Index`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn sample(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64() as usize)
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> Self::Strategy {
        IndexStrategy
    }
}
