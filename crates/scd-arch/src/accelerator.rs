//! Generic accelerator descriptor consumed by the performance model.
//!
//! Both the SPU and the GPU baseline reduce to the same abstraction: a
//! peak compute throughput plus a memory hierarchy. The hierarchical
//! roofline in `optimus` only ever sees this type, which is exactly the
//! paper's "system architecture abstraction layer" (Fig. 4).

use crate::error::ArchError;
use scd_mem::level::{LevelKind, MemoryHierarchy};
use scd_tech::units::{Bandwidth, TimeInterval};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single accelerator (one SPU or one GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Descriptive name ("SPU", "H100", ...).
    pub name: String,
    /// Peak compute throughput in FLOP/s at the working precision
    /// (the paper quotes structured-sparse peaks for both systems).
    pub peak_flops: f64,
    /// Maximum achievable fraction of peak on dense GEMM (the paper uses
    /// 80 % MAC utilization for the SPU).
    pub max_utilization: f64,
    /// The accelerator's memory hierarchy, innermost level first.
    pub hierarchy: MemoryHierarchy,
}

impl Accelerator {
    /// Validates the descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for non-positive peak or a
    /// utilization outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.peak_flops <= 0.0 {
            return Err(ArchError::InvalidConfig {
                reason: format!("{} has non-positive peak FLOP/s", self.name),
            });
        }
        if !(0.0..=1.0).contains(&self.max_utilization) || self.max_utilization == 0.0 {
            return Err(ArchError::InvalidConfig {
                reason: format!("{} has utilization outside (0,1]", self.name),
            });
        }
        Ok(())
    }

    /// Achievable compute throughput (peak × utilization cap).
    #[must_use]
    pub fn achievable_flops(&self) -> f64 {
        self.peak_flops * self.max_utilization
    }

    /// Main-memory bandwidth (the outermost hierarchy level).
    #[must_use]
    pub fn dram_bandwidth(&self) -> Bandwidth {
        self.hierarchy.outermost().bandwidth
    }

    /// Main-memory latency.
    #[must_use]
    pub fn dram_latency(&self) -> TimeInterval {
        self.hierarchy.outermost().latency
    }

    /// Main-memory capacity of this unit (the outermost hierarchy level;
    /// the per-SPU cryo-DRAM share, or one GPU's HBM).
    #[must_use]
    pub fn dram_capacity_bytes(&self) -> u64 {
        self.hierarchy.outermost().capacity_bytes
    }

    /// Capacity of a specific hierarchy level, if present.
    #[must_use]
    pub fn capacity_bytes(&self, kind: LevelKind) -> Option<u64> {
        self.hierarchy.level(kind).map(|l| l.capacity_bytes)
    }

    /// Machine balance at the DRAM level: FLOPs per byte needed to stay
    /// compute-bound (the roofline ridge point).
    #[must_use]
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.achievable_flops() / self.dram_bandwidth().bytes_per_s()
    }

    /// Re-parameterizes the main-memory bandwidth (the Fig. 5/7 sweeps).
    #[must_use]
    pub fn with_dram_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        if let Some(level) = self.hierarchy.level_mut(LevelKind::MainMemory) {
            level.bandwidth = bandwidth;
        }
        self
    }

    /// Re-parameterizes the main-memory latency (the Fig. 7a sweep).
    #[must_use]
    pub fn with_dram_latency(mut self, latency: TimeInterval) -> Self {
        if let Some(level) = self.hierarchy.level_mut(LevelKind::MainMemory) {
            level.latency = latency;
        }
        self
    }

    /// Re-parameterizes the main-memory capacity (per unit). Serving
    /// studies use this to sweep the KV-cache budget — e.g. fragmentation
    /// pressure under the paged allocator — without redefining the blade.
    #[must_use]
    pub fn with_dram_capacity(mut self, capacity_bytes: u64) -> Self {
        if let Some(level) = self.hierarchy.level_mut(LevelKind::MainMemory) {
            level.capacity_bytes = capacity_bytes;
        }
        self
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} PFLOP/s peak, DRAM {}",
            self.name,
            self.peak_flops / 1e15,
            self.dram_bandwidth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_mem::level::MemoryLevel;
    use scd_mem::transfer::TransferModel;
    use scd_tech::units::Energy;

    fn test_accel() -> Accelerator {
        let hierarchy = MemoryHierarchy::new(vec![
            MemoryLevel {
                kind: LevelKind::L1,
                capacity_bytes: 1 << 20,
                bandwidth: Bandwidth::from_tbps(100.0),
                latency: TimeInterval::from_ns(1.0),
                energy_per_byte: Energy::from_fj(10.0),
                transfer: TransferModel::jsram(),
            },
            MemoryLevel {
                kind: LevelKind::MainMemory,
                capacity_bytes: 1 << 40,
                bandwidth: Bandwidth::from_tbps(1.0),
                latency: TimeInterval::from_ns(30.0),
                energy_per_byte: Energy::from_pj(1.0),
                transfer: TransferModel::cryo_dram(),
            },
        ])
        .unwrap();
        Accelerator {
            name: "test".to_owned(),
            peak_flops: 1e15,
            max_utilization: 0.8,
            hierarchy,
        }
    }

    #[test]
    fn achievable_applies_utilization() {
        let a = test_accel();
        assert!((a.achievable_flops() - 0.8e15).abs() < 1.0);
    }

    #[test]
    fn ridge_point() {
        let a = test_accel();
        // 0.8e15 / 1e12 = 800 FLOP/byte.
        assert!((a.ridge_flops_per_byte() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_accessors() {
        let a = test_accel();
        assert_eq!(a.dram_capacity_bytes(), 1 << 40);
        assert_eq!(a.capacity_bytes(LevelKind::L1), Some(1 << 20));
        assert_eq!(a.capacity_bytes(LevelKind::L2), None);
    }

    #[test]
    fn sweep_knobs_update_outermost_level() {
        let a = test_accel()
            .with_dram_bandwidth(Bandwidth::from_tbps(16.0))
            .with_dram_latency(TimeInterval::from_ns(100.0))
            .with_dram_capacity(1 << 33);
        assert!((a.dram_bandwidth().tbps() - 16.0).abs() < 1e-9);
        assert!((a.dram_latency().ns() - 100.0).abs() < 1e-9);
        assert_eq!(a.dram_capacity_bytes(), 1 << 33);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut a = test_accel();
        a.peak_flops = 0.0;
        assert!(a.validate().is_err());
        let mut b = test_accel();
        b.max_utilization = 1.5;
        assert!(b.validate().is_err());
        assert!(test_accel().validate().is_ok());
    }
}
