//! Serving-simulator experiments: dynamic-traffic extensions of the
//! paper's §VI batching study.
//!
//! Where `extensions::serving_capacity` answers the *static* question
//! (largest batch within a per-token budget), these experiments replay
//! seeded Poisson traces through the continuous-batching simulator in
//! `optimus::serving` and report what actually matters for serving heavy
//! traffic: TTFT/TPOT tails, goodput under SLOs, and the
//! SLO-vs-throughput frontier of each system.

use llm_workload::model::ModelZoo;
use llm_workload::parallelism::Parallelism;
use optimus::serving::{FrontierPoint, ServingConfig, ServingSimulator, TraceConfig};
use optimus::{Comparison, OptimusError, ServingReport, SpeedupStudy};

/// The shared workload: Llama-405B, TP=64, prompt/output spread around
/// the paper's I/O 200/200 point.
fn base_trace() -> TraceConfig {
    TraceConfig {
        seed: 2025,
        requests: 48,
        arrival_rate_per_s: 8.0,
        prompt_tokens: (150, 250),
        output_tokens: (150, 250),
    }
}

/// Sweeps offered load on the SCD blade (16 TB/s per SPU) into an
/// SLO-vs-throughput frontier.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn scd_serving_frontier() -> Result<Vec<FrontierPoint>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let est = SpeedupStudy::paper_baseline().scd_inference();
    let config = ServingConfig::for_system(&est, &model, &par, 64)?;
    let sim = ServingSimulator::new(&est, &model, &par, config)?;
    sim.slo_frontier(&base_trace(), &[2.0, 8.0, 32.0, 128.0])
}

/// Renders the frontier sweep.
#[must_use]
pub fn render_serving_frontier(points: &[FrontierPoint]) -> String {
    let mut out = String::from(
        "Continuous-batching frontier: Llama-405B on the SCD blade (TP=64, 16 TB/s)\n\
         seeded Poisson trace, 48 requests, I/O ~200/200, KV capacity = cryo-DRAM − weights\n\n\
         rate(req/s)  tok/s  goodput  TTFT p95(ms)  TPOT p95(ms)  mean B  evict\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<13}{:>5.0}{:>9.0}{:>14.0}{:>14.2}{:>8.1}{:>7}\n",
            p.arrival_rate_per_s,
            p.report.throughput_tok_s,
            p.report.goodput_tok_s,
            p.report.ttft.p95 * 1e3,
            p.report.tpot.p95 * 1e3,
            p.report.mean_batch,
            p.report.evictions
        ));
    }
    out
}

/// Replays the same trace on the SCD blade and the 64×H100 baseline,
/// each against its own KV capacity.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn scd_vs_gpu_serving() -> Result<Comparison<ServingReport>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    SpeedupStudy::paper_baseline().serving(&model, &par, &base_trace(), 64)
}

/// Renders the serving comparison.
#[must_use]
pub fn render_serving_comparison(c: &Comparison<ServingReport>) -> String {
    let row = |name: &str, r: &ServingReport| {
        format!(
            "{:<6}{:>7.0}{:>9.0}{:>13.0}{:>13.0}{:>13.2}{:>13.2}{:>9.2}{:>7}\n",
            name,
            r.throughput_tok_s,
            r.goodput_tok_s,
            r.ttft.p50 * 1e3,
            r.ttft.p95 * 1e3,
            r.tpot.p50 * 1e3,
            r.tpot.p95 * 1e3,
            r.mean_batch,
            r.evictions
        )
    };
    format!(
        "Serving the same trace: SCD blade vs 64×H100 (Llama-405B, TP=64)\n\
         48 requests at 8 req/s, I/O ~200/200; p95-TPOT speed-up {:.1}×\n\n\
         sys    tok/s  goodput  TTFT p50(ms)  TTFT p95(ms)  TPOT p50(ms)  TPOT p95(ms)  mean B  evict\n{}{}",
        c.speedup,
        row("SCD", &c.scd),
        row("GPU", &c.gpu)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_saturates_gracefully() {
        let pts = scd_serving_frontier().unwrap();
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert_eq!(p.report.completed, 48);
        }
        // Tail TTFT must grow with offered load; throughput must not
        // collapse.
        assert!(pts.last().unwrap().report.ttft.p95 >= pts[0].report.ttft.p95);
        assert!(
            pts.last().unwrap().report.throughput_tok_s >= pts[0].report.throughput_tok_s * 0.9
        );
        assert!(render_serving_frontier(&pts).contains("TPOT p95"));
    }

    #[test]
    fn serving_comparison_reports_scd_advantage() {
        let c = scd_vs_gpu_serving().unwrap();
        assert!(c.speedup > 2.0, "got {:.2}", c.speedup);
        assert!(c.scd.tpot.p95 < c.gpu.tpot.p95);
        assert!(render_serving_comparison(&c).contains("speed-up"));
    }
}
