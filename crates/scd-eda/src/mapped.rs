//! Technology-mapped dual-rail PCL netlist (the "SCD netlist" stage of
//! Fig. 1h).
//!
//! After mapping, every node is a concrete [`PclCell`] instance. Dual-rail
//! encoding makes inversion free, so it is represented as an `inverted`
//! flag on a [`Pin`] — physically, the consumer simply takes the two rails
//! in swapped order.

use crate::error::EdaError;
use scd_tech::pcl::PclCell;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in a [`MappedNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A connection to one output port of a node, with free dual-rail
/// inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pin {
    /// Driving node.
    pub node: CellId,
    /// Output port of the driving node (cells like the full adder have 2).
    pub port: usize,
    /// Take the signal in inverted (rail-swapped) sense.
    pub inverted: bool,
}

impl Pin {
    /// A plain, non-inverted connection to port 0.
    #[must_use]
    pub fn of(node: CellId) -> Self {
        Self {
            node,
            port: 0,
            inverted: false,
        }
    }

    /// The same connection with the opposite sense.
    #[must_use]
    pub fn invert(self) -> Self {
        Self {
            inverted: !self.inverted,
            ..self
        }
    }
}

/// A node of the mapped netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappedNode {
    /// Primary input.
    Input {
        /// Port name.
        name: String,
    },
    /// Dual-rail constant (a rail tie; costs no junctions).
    Const {
        /// Constant value.
        value: bool,
    },
    /// A PCL standard-cell instance.
    Cell {
        /// Library cell.
        cell: PclCell,
        /// Input connections in cell-port order.
        pins: Vec<Pin>,
    },
}

/// A dual-rail PCL netlist produced by the synthesis flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappedNetlist {
    name: String,
    nodes: Vec<MappedNode>,
    inputs: Vec<CellId>,
    outputs: Vec<(String, Pin)>,
}

impl MappedNetlist {
    /// Creates an empty mapped netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> CellId {
        let id = CellId(self.nodes.len());
        self.nodes.push(MappedNode::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a dual-rail constant.
    pub fn add_const(&mut self, value: bool) -> CellId {
        let id = CellId(self.nodes.len());
        self.nodes.push(MappedNode::Const { value });
        id
    }

    /// Adds a cell instance.
    ///
    /// # Panics
    ///
    /// Panics if the pin count does not match the cell fan-in.
    pub fn add_cell(&mut self, cell: PclCell, pins: Vec<Pin>) -> CellId {
        assert_eq!(
            pins.len(),
            cell.fanin(),
            "{} expects {} pins",
            cell.name(),
            cell.fanin()
        );
        let id = CellId(self.nodes.len());
        self.nodes.push(MappedNode::Cell { cell, pins });
        id
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, pin: Pin) {
        self.outputs.push((name.into(), pin));
    }

    /// Rewrites the input pins of an existing cell (used by splitter
    /// insertion).
    pub(crate) fn set_pins(&mut self, id: CellId, new_pins: Vec<Pin>) {
        if let MappedNode::Cell { pins, .. } = &mut self.nodes[id.0] {
            *pins = new_pins;
        }
    }

    /// Rewrites a primary output pin (used by splitter insertion).
    pub(crate) fn set_output_pin(&mut self, index: usize, pin: Pin) {
        self.outputs[index].1 = pin;
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[MappedNode] {
        &self.nodes
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Pin)] {
        &self.outputs
    }

    /// Number of cell instances (excluding inputs and constants).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, MappedNode::Cell { .. }))
            .count()
    }

    /// Histogram of library cells.
    #[must_use]
    pub fn cell_histogram(&self) -> HashMap<PclCell, usize> {
        let mut h = HashMap::new();
        for n in &self.nodes {
            if let MappedNode::Cell { cell, .. } = n {
                *h.entry(*cell).or_insert(0) += 1;
            }
        }
        h
    }

    /// Total Josephson junctions over all cells.
    #[must_use]
    pub fn junctions(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match n {
                MappedNode::Cell { cell, .. } => u64::from(cell.junctions()),
                _ => 0,
            })
            .sum()
    }

    /// Topological order of all nodes (inputs/constants first).
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::CombinationalCycle`] if the netlist is cyclic
    /// (possible only through `set_pins` misuse).
    pub fn topo_order(&self) -> Result<Vec<CellId>, EdaError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let MappedNode::Cell { pins, .. } = node {
                indegree[i] = pins.len();
                for p in pins {
                    consumers[p.node.0].push(i);
                }
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(CellId(i));
            for &c in &consumers[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(EdaError::CombinationalCycle)
        }
    }

    /// Word-parallel functional simulation (64 patterns per call).
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::BadArity`] on input-count mismatch or
    /// [`EdaError::CombinationalCycle`] for a cyclic netlist.
    pub fn eval_word(&self, assignment: &[u64]) -> Result<Vec<u64>, EdaError> {
        if assignment.len() != self.inputs.len() {
            return Err(EdaError::BadArity {
                op: "mapped eval",
                expected: "one word per primary input",
                actual: assignment.len(),
            });
        }
        let order = self.topo_order()?;
        let input_pos: HashMap<usize, usize> = self
            .inputs
            .iter()
            .enumerate()
            .map(|(k, id)| (id.0, k))
            .collect();
        // Up to 2 output ports per node.
        let mut values = vec![[0u64; 2]; self.nodes.len()];
        let read = |values: &Vec<[u64; 2]>, p: &Pin| {
            let v = values[p.node.0][p.port];
            if p.inverted {
                !v
            } else {
                v
            }
        };
        for id in order {
            match &self.nodes[id.0] {
                MappedNode::Input { .. } => {
                    values[id.0][0] = assignment[input_pos[&id.0]];
                }
                MappedNode::Const { value } => {
                    values[id.0][0] = if *value { u64::MAX } else { 0 };
                }
                MappedNode::Cell { cell, pins } => {
                    let args: Vec<u64> = pins.iter().map(|p| read(&values, p)).collect();
                    let outs = eval_cell_word(*cell, &args);
                    values[id.0][0] = outs[0];
                    if outs.len() > 1 {
                        values[id.0][1] = outs[1];
                    }
                }
            }
        }
        Ok(self.outputs.iter().map(|(_, p)| read(&values, p)).collect())
    }

    /// Scalar functional simulation.
    ///
    /// # Errors
    ///
    /// See [`MappedNetlist::eval_word`].
    pub fn eval(&self, assignment: &[bool]) -> Result<Vec<bool>, EdaError> {
        let words: Vec<u64> = assignment
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        Ok(self
            .eval_word(&words)?
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect())
    }
}

/// Word-parallel evaluation of a single PCL cell.
fn eval_cell_word(cell: PclCell, a: &[u64]) -> Vec<u64> {
    use PclCell as C;
    let and = |xs: &[u64]| xs.iter().fold(u64::MAX, |x, &y| x & y);
    let or = |xs: &[u64]| xs.iter().fold(0u64, |x, &y| x | y);
    let xor = |xs: &[u64]| xs.iter().fold(0u64, |x, &y| x ^ y);
    let maj = |xs: &[u64]| (xs[0] & xs[1]) | (xs[1] & xs[2]) | (xs[0] & xs[2]);
    match cell {
        C::Buf => vec![a[0]],
        C::Inv => vec![!a[0]],
        C::And2 | C::And3 | C::And4 => vec![and(a)],
        C::Nand2 | C::Nand3 | C::Nand4 => vec![!and(a)],
        C::Or2 | C::Or3 | C::Or4 => vec![or(a)],
        C::Nor2 | C::Nor3 | C::Nor4 => vec![!or(a)],
        C::Xor2 | C::Xor3 => vec![xor(a)],
        C::Xnor2 | C::Xnor3 => vec![!xor(a)],
        C::Maj3 => vec![maj(a)],
        C::Maj3Inv => vec![!maj(a)],
        C::Ao22 => vec![(a[0] & a[1]) | (a[2] & a[3])],
        C::Oa22 => vec![(a[0] | a[1]) & (a[2] | a[3])],
        C::HalfAdder => vec![xor(a), and(a)],
        C::FullAdder => vec![xor(a), maj(a)],
        C::Splitter => vec![a[0], a[0]],
    }
}

impl fmt::Display for MappedNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (mapped): {} inputs, {} outputs, {} cells, {} JJs",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.cell_count(),
            self.junctions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_cell_eval() {
        let mut m = MappedNetlist::new("fa");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let c = m.add_input("cin");
        let fa = m.add_cell(PclCell::FullAdder, vec![Pin::of(a), Pin::of(b), Pin::of(c)]);
        m.add_output(
            "sum",
            Pin {
                node: fa,
                port: 0,
                inverted: false,
            },
        );
        m.add_output(
            "cout",
            Pin {
                node: fa,
                port: 1,
                inverted: false,
            },
        );
        for bits in 0..8u64 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let out = m.eval(&ins).unwrap();
            let ones = ins.iter().filter(|&&x| x).count();
            assert_eq!(out[0], ones % 2 == 1);
            assert_eq!(out[1], ones >= 2);
        }
    }

    #[test]
    fn inverted_pin_is_free_inversion() {
        let mut m = MappedNetlist::new("inv");
        let a = m.add_input("a");
        m.add_output("y", Pin::of(a).invert());
        assert_eq!(m.eval(&[true]).unwrap(), vec![false]);
        assert_eq!(m.junctions(), 0, "inversion costs no junctions");
    }

    #[test]
    fn const_nodes() {
        let mut m = MappedNetlist::new("c");
        let one = m.add_const(true);
        let a = m.add_input("a");
        let g = m.add_cell(PclCell::And2, vec![Pin::of(one), Pin::of(a)]);
        m.add_output("y", Pin::of(g));
        assert_eq!(m.eval(&[true]).unwrap(), vec![true]);
        assert_eq!(m.eval(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn topo_order_handles_forward_references() {
        // Build out of order: cell first (referencing later splitter is not
        // possible at construction, but set_pins can create it).
        let mut m = MappedNetlist::new("fwd");
        let a = m.add_input("a");
        let g = m.add_cell(PclCell::Buf, vec![Pin::of(a)]);
        m.add_output("y", Pin::of(g));
        let spl = m.add_cell(PclCell::Splitter, vec![Pin::of(a)]);
        m.set_pins(g, vec![Pin::of(spl)]);
        assert_eq!(m.eval(&[true]).unwrap(), vec![true]);
    }

    #[test]
    fn cycle_detected() {
        let mut m = MappedNetlist::new("cyc");
        let a = m.add_input("a");
        let g1 = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(a)]);
        let g2 = m.add_cell(PclCell::Or2, vec![Pin::of(g1), Pin::of(a)]);
        m.set_pins(g1, vec![Pin::of(g2), Pin::of(a)]);
        m.add_output("y", Pin::of(g2));
        assert_eq!(m.eval(&[true]), Err(EdaError::CombinationalCycle));
    }

    #[test]
    #[should_panic(expected = "expects 2 pins")]
    fn pin_count_checked() {
        let mut m = MappedNetlist::new("bad");
        let a = m.add_input("a");
        let _ = m.add_cell(PclCell::And2, vec![Pin::of(a)]);
    }

    #[test]
    fn histogram_and_junctions() {
        let mut m = MappedNetlist::new("h");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g1 = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b)]);
        let g2 = m.add_cell(PclCell::And2, vec![Pin::of(g1), Pin::of(b)]);
        m.add_output("y", Pin::of(g2));
        assert_eq!(m.cell_histogram()[&PclCell::And2], 2);
        assert_eq!(m.junctions(), 2 * u64::from(PclCell::And2.junctions()));
    }
}
