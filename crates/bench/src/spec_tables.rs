//! Experiments T1, F1f/g, F1h, F2b, F3c: regenerating the paper's
//! specification tables bottom-up.

use scd_arch::Blade;
use scd_eda::blocks;
use scd_eda::flow::StarlingFlow;
use scd_eda::netlist::Netlist;
use scd_mem::datalink::Datalink;
use scd_tech::pcl::LibrarySummary;
use scd_tech::technology::{render_table1, Technology};
use serde::{Deserialize, Serialize};

/// Renders Table I (technology stack specifications).
#[must_use]
pub fn table1() -> String {
    let mut out = String::from("TABLE I: Specifications for the SCD technology stack\n\n");
    out.push_str(&render_table1(
        &Technology::cmos_5nm(),
        &Technology::scd_nbtin(),
    ));
    out
}

/// Renders the PCL cell library (Fig. 1f/1g) with JJ costs and phases.
#[must_use]
pub fn fig1_pcl_library() -> String {
    let mut out = String::from(
        "Fig. 1f/1g: PCL dual-rail cell library\n\n\
         cell      fan-in  outputs  junctions  phases\n",
    );
    for (name, fanin, outs, jjs, phases) in LibrarySummary::build().rows {
        out.push_str(&format!(
            "{name:<10}{fanin:>5}{outs:>9}{jjs:>11}{phases:>8}\n"
        ));
    }
    out
}

/// One design-database row of the F1h experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdaFlowRow {
    /// Block name.
    pub design: String,
    /// Logic junctions (the paper's anchor metric).
    pub logic_junctions: u64,
    /// Total junctions including splitters and phase padding.
    pub total_junctions: u64,
    /// Pipeline depth in phases.
    pub phases: u32,
    /// Latency at 30 GHz, in nanoseconds.
    pub latency_ns: f64,
    /// Energy per operation in femtojoules.
    pub energy_fj: f64,
}

/// Runs the Starling flow over the Fig. 1h design database.
///
/// # Errors
///
/// Propagates generator/flow errors.
pub fn fig1_eda_flow() -> Result<Vec<EdaFlowRow>, scd_eda::EdaError> {
    let flow = StarlingFlow::new(Technology::scd_nbtin());
    let fast_flow = flow.clone().with_verify_words(8);
    let designs: Vec<(Netlist, bool)> = vec![
        (blocks::ripple_adder(8)?, false),
        (blocks::kogge_stone_adder(8)?, false),
        (blocks::array_multiplier(8)?, true),
        (blocks::bf16_mac()?, true),
        (blocks::alu(8)?, true),
        (blocks::crossbar(4, 8)?, true),
        (blocks::shift_register(8, 8)?, false),
        (blocks::register_file_read(8, 8)?, true),
        (blocks::comparator(8)?, false),
        (blocks::popcount(16)?, false),
    ];
    let mut rows = Vec::new();
    for (netlist, wide) in designs {
        let compiled = if wide {
            fast_flow.compile(&netlist)?
        } else {
            flow.compile(&netlist)?
        };
        let r = compiled.report;
        rows.push(EdaFlowRow {
            design: r.design.clone(),
            logic_junctions: r.logic_junctions,
            total_junctions: r.total_junctions,
            phases: r.pipeline_depth,
            latency_ns: r.latency.ns(),
            energy_fj: r.energy_per_op.joules() * 1e15,
        });
    }
    Ok(rows)
}

/// Renders the F1h rows.
#[must_use]
pub fn render_eda_flow(rows: &[EdaFlowRow]) -> String {
    let mut out = String::from(
        "Fig. 1h: RTL→PCL flow over the design database\n\n\
         design          logic JJ   total JJ  phases  latency(ns)  energy/op(fJ)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15}{:>9}{:>11}{:>8}{:>13.3}{:>15.3}\n",
            r.design, r.logic_junctions, r.total_junctions, r.phases, r.latency_ns, r.energy_fj
        ));
    }
    out
}

/// Renders the Fig. 2b datalink table (baseline rate and the paper-peak
/// 30 TB/s operating point).
#[must_use]
pub fn fig2_datalink() -> String {
    let baseline = Datalink::fig2_baseline();
    let peak = Datalink::paper_peak();
    let mut out = String::from("Fig. 2b: main-memory datalink specifications (baseline)\n\n");
    out.push_str(&baseline.render_table());
    out.push_str(&format!(
        "\nAt the paper's peak operating point ({:.0} Gb/s per wire):\n{} down / {} up = {} bidirectional\n",
        peak.downlink.data_rate.hz() / 1e9,
        peak.downlink.bandwidth(),
        peak.uplink.bandwidth(),
        peak.total_bandwidth(),
    ));
    out
}

/// Renders the Fig. 3c blade specification table, derived bottom-up.
#[must_use]
pub fn fig3_blade_specs() -> String {
    let blade = Blade::baseline();
    let mut out = String::from("Fig. 3c: system specifications for the SCD blade\n\n");
    out.push_str(&blade.spec_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_both_columns() {
        let t = table1();
        assert!(t.contains("CMOS 5nm"));
        assert!(t.contains("this work"));
    }

    #[test]
    fn pcl_library_covers_fa() {
        let t = fig1_pcl_library();
        assert!(t.contains("FA"));
        assert!(t.contains("INV"));
    }

    #[test]
    fn eda_flow_hits_mac_anchor() {
        let rows = fig1_eda_flow().unwrap();
        let mac = rows.iter().find(|r| r.design == "bf16_mac").unwrap();
        assert!(
            (5_000..12_000).contains(&mac.logic_junctions),
            "MAC anchor ~8 kJJ, got {}",
            mac.logic_junctions
        );
        let text = render_eda_flow(&rows);
        assert!(text.contains("adder8"));
    }

    #[test]
    fn datalink_table_has_peak_point() {
        let t = fig2_datalink();
        assert!(t.contains("30.00 TB/s"));
    }

    #[test]
    fn blade_specs_render() {
        let t = fig3_blade_specs();
        assert!(t.contains("No. of SPUs"));
    }
}
