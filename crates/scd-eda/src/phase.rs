//! Phase assignment and balancing.
//!
//! Every PCL gate is clocked by the resonant AC network: data advances one
//! *phase* per gate stage. For correct operation all inputs of a gate must
//! arrive in the same phase, so shorter paths receive JTL padding buffers —
//! the "phase assignment / phase matching" step of the Fig. 1h flow. The
//! resulting design is a fully-pipelined systolic structure: latency is the
//! output phase count, and a new operation can enter every clock cycle.

use crate::mapped::{MappedNetlist, MappedNode};
use scd_tech::pcl::PclCell;
use serde::{Deserialize, Serialize};

/// Result of phase balancing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase (pipeline stage) at which each node's output is valid.
    pub node_phase: Vec<u32>,
    /// Total pipeline depth: latest primary-output phase.
    pub pipeline_depth: u32,
    /// JTL padding buffers required to equalize arrival phases.
    pub padding_buffers: u64,
    /// Junction cost of the padding buffers.
    pub padding_junctions: u64,
}

/// Junctions per single-phase dual-rail JTL padding stage (both rails).
const PADDING_JJ: u64 = 4;

/// Assigns phases to every node and computes the padding needed to
/// phase-balance all reconvergent paths.
///
/// # Errors
///
/// Returns [`crate::EdaError::CombinationalCycle`] if the netlist is
/// cyclic.
pub fn balance_phases(netlist: &MappedNetlist) -> Result<PhaseReport, crate::EdaError> {
    let order = netlist.topo_order()?;
    let mut phase = vec![0u32; netlist.nodes().len()];
    let mut padding: u64 = 0;

    for id in order {
        match &netlist.nodes()[id.index()] {
            MappedNode::Input { .. } | MappedNode::Const { .. } => {
                phase[id.index()] = 0;
            }
            MappedNode::Cell { cell, pins } => {
                let arrival = pins
                    .iter()
                    .map(|p| phase[p.node.index()])
                    .max()
                    .unwrap_or(0);
                for p in pins {
                    padding += u64::from(arrival - phase[p.node.index()]);
                }
                phase[id.index()] = arrival + cell.phase_depth();
            }
        }
    }

    // Primary outputs must also leave in lock-step.
    let out_phase = netlist
        .outputs()
        .iter()
        .map(|(_, p)| phase[p.node.index()])
        .max()
        .unwrap_or(0);
    for (_, p) in netlist.outputs() {
        padding += u64::from(out_phase - phase[p.node.index()]);
    }

    Ok(PhaseReport {
        pipeline_depth: out_phase,
        padding_buffers: padding,
        padding_junctions: padding * PADDING_JJ,
        node_phase: phase,
    })
}

/// Returns `true` if the given netlist needs no padding (all reconvergent
/// paths already balanced).
///
/// # Errors
///
/// Propagates topological-sort failures.
pub fn is_balanced(netlist: &MappedNetlist) -> Result<bool, crate::EdaError> {
    Ok(balance_phases(netlist)?.padding_buffers == 0)
}

/// A convenience alias used by reports: phases through a single cell.
#[must_use]
pub fn cell_phases(cell: PclCell) -> u32 {
    cell.phase_depth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::{MappedNetlist, Pin};

    #[test]
    fn straight_chain_needs_no_padding() {
        let mut m = MappedNetlist::new("chain");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g1 = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b)]);
        m.add_output("y", Pin::of(g1));
        let r = balance_phases(&m).unwrap();
        assert_eq!(r.pipeline_depth, 1);
        assert_eq!(r.padding_buffers, 0);
        assert!(is_balanced(&m).unwrap());
    }

    #[test]
    fn reconvergent_paths_get_padding() {
        // y = (a AND b) OR a: the direct `a` arm is 1 phase short.
        let mut m = MappedNetlist::new("reconv");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g1 = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b)]);
        let g2 = m.add_cell(PclCell::Or2, vec![Pin::of(g1), Pin::of(a)]);
        m.add_output("y", Pin::of(g2));
        let r = balance_phases(&m).unwrap();
        assert_eq!(r.pipeline_depth, 2);
        assert_eq!(r.padding_buffers, 1);
        assert_eq!(r.padding_junctions, 4);
        assert!(!is_balanced(&m).unwrap());
    }

    #[test]
    fn two_phase_cells_advance_two_phases() {
        let mut m = MappedNetlist::new("xor");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g = m.add_cell(PclCell::Xor2, vec![Pin::of(a), Pin::of(b)]);
        m.add_output("y", Pin::of(g));
        let r = balance_phases(&m).unwrap();
        assert_eq!(r.pipeline_depth, 2);
    }

    #[test]
    fn output_skew_is_padded() {
        let mut m = MappedNetlist::new("skew");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let deep = m.add_cell(PclCell::Xor2, vec![Pin::of(a), Pin::of(b)]);
        let shallow = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b)]);
        m.add_output("x", Pin::of(deep)); // phase 2
        m.add_output("y", Pin::of(shallow)); // phase 1 → 1 pad
        let r = balance_phases(&m).unwrap();
        assert_eq!(r.pipeline_depth, 2);
        assert_eq!(r.padding_buffers, 1);
    }

    #[test]
    fn free_inversion_does_not_shift_phase() {
        let mut m = MappedNetlist::new("inv");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g1 = m.add_cell(PclCell::And2, vec![Pin::of(a).invert(), Pin::of(b)]);
        let g2 = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b).invert()]);
        let g3 = m.add_cell(PclCell::Or2, vec![Pin::of(g1), Pin::of(g2)]);
        m.add_output("y", Pin::of(g3));
        let r = balance_phases(&m).unwrap();
        assert_eq!(r.pipeline_depth, 2);
        assert_eq!(r.padding_buffers, 0);
    }
}
