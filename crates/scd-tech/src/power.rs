//! Resonant AC power-distribution network model.
//!
//! PCL circuits are AC-powered: a resonant network of NbTiN inductive
//! wiring and HZO MIM capacitors (\[29\] of the paper) delivers the
//! multi-phase clock that is also the power supply. Design questions this
//! model answers: how many tuning capacitors a die needs, what the
//! network's reactive loading is, and what the dynamic power of a die
//! looks like at a given activity — the quantities behind Table I's
//! "fraction of the on-chip power" claim.

use crate::jj::JosephsonJunction;
use crate::mim::MimCapacitor;
use crate::units::{Area, Energy, Frequency, Power};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resonant clock/power network of one die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResonantNetwork {
    /// Operating (clock) frequency.
    pub clock: Frequency,
    /// Clock phases distributed (PCL uses a multi-phase AC clock).
    pub phases: u32,
    /// Junctions served per tuning capacitor (local resonator granularity).
    pub junctions_per_capacitor: u32,
    /// The tuning capacitor.
    pub capacitor: MimCapacitor,
}

impl ResonantNetwork {
    /// The baseline 30 GHz four-phase network with one MIM capacitor per
    /// 32 junctions.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            clock: Frequency::from_ghz(30.0),
            phases: 4,
            junctions_per_capacitor: 32,
            capacitor: MimCapacitor::nominal(),
        }
    }

    /// Tuning capacitors needed for a die with `junctions` JJs.
    #[must_use]
    pub fn capacitors_for(&self, junctions: u64) -> u64 {
        junctions.div_ceil(u64::from(self.junctions_per_capacitor.max(1)))
    }

    /// Area consumed by the tuning capacitors of a `junctions`-JJ die.
    /// MIM caps sit in dedicated BEOL layers, so this is wiring-plane
    /// area, not device-plane area — but it bounds the metal-layer budget.
    #[must_use]
    pub fn capacitor_area(&self, junctions: u64) -> Area {
        let d_um = self.capacitor.diameter().um();
        let per_cap = std::f64::consts::PI * d_um * d_um / 4.0;
        Area::from_um2(per_cap * self.capacitors_for(junctions) as f64)
    }

    /// Per-resonator inductance target (pH) to hit the clock frequency —
    /// the "targeted inductance" routing constraint of the paper's P&R.
    #[must_use]
    pub fn inductance_target_ph(&self) -> f64 {
        self.capacitor.tuning_inductance_ph(self.clock)
    }

    /// Dynamic power of a die with `junctions` JJs at `activity`
    /// (fraction of junctions switching per cycle).
    #[must_use]
    pub fn dynamic_power(&self, jj: &JosephsonJunction, junctions: u64, activity: f64) -> Power {
        let per_cycle: Energy =
            jj.switching_energy() * (junctions as f64) * activity.clamp(0.0, 1.0);
        Power::from_watts(per_cycle.joules() * self.clock.hz())
    }

    /// AC distribution loss: the resonant network recycles most reactive
    /// energy; the dissipated fraction is set by the resonator quality
    /// factor (Q ≈ 1000 for superconducting LC tanks → 0.1 % loss of the
    /// circulating energy per cycle). Returned as watts for a die with
    /// `junctions` JJs biased at `bias_fraction` of critical current.
    #[must_use]
    pub fn distribution_loss(&self, jj: &JosephsonJunction, junctions: u64) -> Power {
        const QUALITY_FACTOR: f64 = 1000.0;
        // Circulating energy ≈ one switching quantum per junction per
        // cycle held reactively.
        let circulating = jj.switching_energy() * (junctions as f64);
        Power::from_watts(circulating.joules() * self.clock.hz() / QUALITY_FACTOR)
    }
}

impl Default for ResonantNetwork {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for ResonantNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-phase resonant network @ {} (L target {:.1} pH)",
            self.phases,
            self.clock,
            self.inductance_target_ph()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spu_compute_die_power_is_sub_watt() {
        // The paper's "100× less on-chip power": a 41k-MAC die
        // (~330 MJJ at 8 kJJ each) at 50 % activity stays well under a
        // watt of dynamic power.
        let net = ResonantNetwork::baseline();
        let jj = JosephsonJunction::nominal();
        let junctions = 41_000u64 * 8_000;
        let p = net.dynamic_power(&jj, junctions, 0.5);
        assert!(p.watts() < 1.0, "got {p}");
        assert!(p.watts() > 0.01, "non-trivial: {p}");
    }

    #[test]
    fn distribution_loss_below_dynamic_power() {
        let net = ResonantNetwork::baseline();
        let jj = JosephsonJunction::nominal();
        let junctions = 1_000_000u64;
        let dynamic = net.dynamic_power(&jj, junctions, 0.5);
        let loss = net.distribution_loss(&jj, junctions);
        assert!(loss.watts() < dynamic.watts());
    }

    #[test]
    fn capacitor_count_and_area_scale() {
        let net = ResonantNetwork::baseline();
        assert_eq!(net.capacitors_for(0), 0);
        assert_eq!(net.capacitors_for(1), 1);
        assert_eq!(net.capacitors_for(64), 2);
        let a1 = net.capacitor_area(1_000_000);
        let a2 = net.capacitor_area(2_000_000);
        assert!((a2.um2() / a1.um2() - 2.0).abs() < 0.01);
    }

    #[test]
    fn inductance_target_matches_capacitor_resonance() {
        let net = ResonantNetwork::baseline();
        let l = net.inductance_target_ph();
        let f = net.capacitor.resonant_frequency(l);
        assert!((f.ghz() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn activity_clamped() {
        let net = ResonantNetwork::baseline();
        let jj = JosephsonJunction::nominal();
        let p_over = net.dynamic_power(&jj, 1000, 2.0);
        let p_full = net.dynamic_power(&jj, 1000, 1.0);
        assert!((p_over.watts() - p_full.watts()).abs() < 1e-18);
    }
}
