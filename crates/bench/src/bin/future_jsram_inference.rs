//! §VII extension: weights resident in a huge JSRAM L2.
fn main() -> Result<(), optimus::OptimusError> {
    let rows = scd_bench::extensions::jsram_inference_study()?;
    print!("{}", scd_bench::extensions::render_jsram_study(&rows));
    Ok(())
}
