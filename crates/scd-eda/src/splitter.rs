//! Splitter insertion (fan-out repair).
//!
//! In pulse logic a gate output is a single SFQ pulse and can drive exactly
//! one load; any net with fan-out > 1 needs a tree of 1→2 splitters. This
//! pass physically inserts balanced splitter trees, mirroring the
//! "splitter insertion" step of the Fig. 1h flow.

use crate::mapped::{CellId, MappedNetlist, MappedNode, Pin};
use scd_tech::pcl::PclCell;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics from splitter insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitterStats {
    /// Splitter cells inserted.
    pub splitters_inserted: usize,
    /// Maximum fan-out encountered before repair.
    pub max_fanout: usize,
    /// Nets that required repair.
    pub nets_repaired: usize,
}

/// Inserts splitter trees so every output drives at most one load.
///
/// Consumers of a repaired net are re-pointed at distinct leaves of a
/// balanced splitter tree; pin inversions are preserved (the splitter
/// carries both rails, so inversion remains free downstream).
pub fn insert_splitters(netlist: &mut MappedNetlist) -> SplitterStats {
    // Gather consumers per (node, port): (consumer cell, pin index) or
    // primary output index.
    #[derive(Clone, Copy)]
    enum Consumer {
        CellPin { cell: CellId, pin: usize },
        Output { index: usize },
    }

    let mut consumers: HashMap<(CellId, usize), Vec<(Consumer, bool)>> = HashMap::new();
    let node_count = netlist.nodes().len();
    for idx in 0..node_count {
        if let MappedNode::Cell { pins, .. } = &netlist.nodes()[idx] {
            for (k, p) in pins.iter().enumerate() {
                consumers.entry((p.node, p.port)).or_default().push((
                    Consumer::CellPin {
                        cell: CellId(idx),
                        pin: k,
                    },
                    p.inverted,
                ));
            }
        }
    }
    for (i, (_, p)) in netlist.outputs().iter().enumerate() {
        consumers
            .entry((p.node, p.port))
            .or_default()
            .push((Consumer::Output { index: i }, p.inverted));
    }

    let mut stats = SplitterStats::default();
    for ((src, port), users) in consumers {
        stats.max_fanout = stats.max_fanout.max(users.len());
        if users.len() <= 1 {
            continue;
        }
        // Inputs and constants fan out through distribution wiring on the
        // resonant network, not gate outputs; still repaired for realism.
        stats.nets_repaired += 1;

        // Build a balanced tree with `users.len()` leaves. Each splitter
        // provides 2 output pins; greedily expand the frontier.
        let mut frontier: Vec<Pin> = vec![Pin {
            node: src,
            port,
            inverted: false,
        }];
        while frontier.len() < users.len() {
            // Expand the shallowest pin (front of the queue).
            let feed = frontier.remove(0);
            let spl = netlist.add_cell(PclCell::Splitter, vec![feed]);
            stats.splitters_inserted += 1;
            frontier.push(Pin {
                node: spl,
                port: 0,
                inverted: false,
            });
            frontier.push(Pin {
                node: spl,
                port: 1,
                inverted: false,
            });
        }

        for ((user, inverted), leaf) in users.into_iter().zip(frontier) {
            let leaf = Pin {
                inverted: inverted ^ leaf.inverted,
                ..leaf
            };
            match user {
                Consumer::CellPin { cell, pin } => {
                    let mut pins = match &netlist.nodes()[cell.index()] {
                        MappedNode::Cell { pins, .. } => pins.clone(),
                        _ => unreachable!("consumer is a cell"),
                    };
                    pins[pin] = leaf;
                    netlist.set_pins(cell, pins);
                }
                Consumer::Output { index } => netlist.set_output_pin(index, leaf),
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::MappedNetlist;

    /// Max fan-out over all (node, port) nets.
    fn max_fanout(netlist: &MappedNetlist) -> usize {
        let mut count: HashMap<(usize, usize), usize> = HashMap::new();
        for n in netlist.nodes() {
            if let MappedNode::Cell { pins, .. } = n {
                for p in pins {
                    *count.entry((p.node.index(), p.port)).or_insert(0) += 1;
                }
            }
        }
        for (_, p) in netlist.outputs() {
            *count.entry((p.node.index(), p.port)).or_insert(0) += 1;
        }
        count.values().copied().max().unwrap_or(0)
    }

    #[test]
    fn high_fanout_net_is_repaired_and_function_preserved() {
        let mut m = MappedNetlist::new("fan");
        let a = m.add_input("a");
        let b = m.add_input("b");
        let g = m.add_cell(PclCell::And2, vec![Pin::of(a), Pin::of(b)]);
        // g drives 5 consumers.
        for i in 0..4 {
            let c = m.add_cell(PclCell::Or2, vec![Pin::of(g), Pin::of(b)]);
            m.add_output(format!("o{i}"), Pin::of(c));
        }
        m.add_output("g", Pin::of(g).invert());

        let before: Vec<u64> = m.eval_word(&[0b0110, 0b1010]).unwrap();
        let stats = insert_splitters(&mut m);
        let after: Vec<u64> = m.eval_word(&[0b0110, 0b1010]).unwrap();

        assert_eq!(before, after, "splitters must not change the function");
        assert_eq!(stats.max_fanout, 5);
        assert!(stats.splitters_inserted >= 4);
        assert_eq!(max_fanout(&m), 1);
    }

    #[test]
    fn fanout_one_designs_untouched() {
        let mut m = MappedNetlist::new("chain");
        let a = m.add_input("a");
        let g1 = m.add_cell(PclCell::Buf, vec![Pin::of(a)]);
        let g2 = m.add_cell(PclCell::Buf, vec![Pin::of(g1)]);
        m.add_output("y", Pin::of(g2));
        let stats = insert_splitters(&mut m);
        assert_eq!(stats.splitters_inserted, 0);
        assert_eq!(stats.nets_repaired, 0);
    }

    #[test]
    fn splitter_tree_is_balanced_for_power_of_two_fanout() {
        let mut m = MappedNetlist::new("fan4");
        let a = m.add_input("a");
        for i in 0..4 {
            m.add_output(format!("o{i}"), Pin::of(a));
        }
        let stats = insert_splitters(&mut m);
        // 4 leaves need exactly 3 splitters in a balanced binary tree.
        assert_eq!(stats.splitters_inserted, 3);
        assert_eq!(m.eval(&[true]).unwrap(), vec![true; 4]);
    }

    #[test]
    fn inverted_consumers_keep_their_sense() {
        let mut m = MappedNetlist::new("inv_fan");
        let a = m.add_input("a");
        m.add_output("pos", Pin::of(a));
        m.add_output("neg", Pin::of(a).invert());
        insert_splitters(&mut m);
        assert_eq!(m.eval(&[true]).unwrap(), vec![true, false]);
        assert_eq!(m.eval(&[false]).unwrap(), vec![false, true]);
    }
}
