//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (stand-in for `proptest::arbitrary::any`).
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}
