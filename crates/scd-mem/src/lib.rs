//! # scd-mem — SCD memory hierarchy, cryo-DRAM and the 4K↔77K datalink
//!
//! The memory substrate of *"A System Level Performance Evaluation for
//! Superconducting Digital Systems"* (Kundu et al., DATE 2025):
//!
//! * [`level`] — per-accelerator memory-level descriptors (HP-JSRAM
//!   register file → HD-JSRAM L1 → shared SNU L2 → cryo-DRAM) and the
//!   ordered [`MemoryHierarchy`] walked by the hierarchical roofline.
//! * [`transfer`] — the latency-aware transfer model (Little's-law window
//!   cap) behind the paper's Fig. 7 saturation and inset (a) sensitivity.
//! * [`datalink`] — the Fig. 2 dual-temperature interface (Cu-over-glass
//!   bridge, 20k/10k wires, 30 TB/s bidirectional peak).
//! * [`dram`] — commodity DDR/LPDDR packages operated at 77 K (2 TB per
//!   blade baseline, ~30 ns access).
//! * [`cache`] — an LRU set-associative simulator used to ground-truth the
//!   analytical working-set placement and the §VI KV-in-L2 study.
//!
//! # Examples
//!
//! ```
//! use scd_mem::datalink::Datalink;
//! use scd_mem::transfer::TransferModel;
//! use scd_tech::units::TimeInterval;
//!
//! let link = Datalink::paper_peak();
//! assert!((link.total_bandwidth().tbps() - 30.0).abs() < 1e-9);
//!
//! // Per-SPU share on a 64-SPU blade: the 0.47 TB/s of Fig. 3c.
//! let per_spu = link.per_spu_bandwidth(64)?;
//! assert!((per_spu.tbps() - 0.469).abs() < 1e-3);
//!
//! // Effective bandwidth at 30 ns is latency-capped near 8.7 TB/s.
//! let eff = TransferModel::cryo_dram()
//!     .effective_bandwidth(scd_tech::units::Bandwidth::from_tbps(16.0),
//!                          TimeInterval::from_ns(30.0));
//! assert!(eff.tbps() < 9.0);
//! # Ok::<(), scd_mem::MemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod datalink;
pub mod dram;
pub mod error;
pub mod level;
pub mod transfer;

pub use cache::CacheSim;
pub use datalink::Datalink;
pub use dram::CryoDramBlock;
pub use error::MemError;
pub use level::{LevelKind, MemoryHierarchy, MemoryLevel};
pub use transfer::TransferModel;
