//! Serving studies: static capacity under per-token QoS budgets, plus the
//! continuous-batching simulator's dynamic-traffic view (frontier sweep
//! and SCD-vs-GPU trace replay).
fn main() -> Result<(), optimus::OptimusError> {
    use scd_bench::{extensions as ext, serving_experiments as srv};
    let hr = "=".repeat(72);
    println!("{}\n{hr}", ext::render_serving(&ext::serving_capacity()?));
    println!(
        "{}\n{hr}",
        srv::render_serving_frontier(&srv::scd_serving_frontier()?)
    );
    print!(
        "{}",
        srv::render_serving_comparison(&srv::scd_vs_gpu_serving()?)
    );
    Ok(())
}
