//! The scenario builder: the one entry point of the serving API.
//!
//! PR 2 and PR 3 accreted three overlapping ways to stand up a serving
//! run — `ServingConfig` + `ServingSimulator`, `ClusterConfig` +
//! `ClusterSimulator`, and hand-wired bench glue. [`Scenario`] replaces
//! all of them with one fluent builder: anchor it on a system (or a bare
//! estimator for GPU baselines), describe the workload, policy, KV
//! layout, SLO classes and blade topology, and [`Scenario::compile`] it
//! into a validated, immutable [`CompiledScenario`] that runs on the
//! single-blade engine, the classic cluster loops, or the disaggregated
//! prefill→decode loop — always returning a [`ClusterReport`] (a
//! single-blade run is a 1-blade cluster, bit-for-bit).
//!
//! ```
//! use llm_workload::{ModelZoo, Parallelism};
//! use optimus::serving::Scenario;
//! use optimus::MultiBladeSystem;
//!
//! # fn main() -> Result<(), optimus::OptimusError> {
//! let system = MultiBladeSystem::new(1)?;
//! let model = ModelZoo::llama2_7b();
//! let par = Parallelism::new(1, 1, 1)?;
//! let report = Scenario::new(&system)
//!     .model(&model)
//!     .parallelism(&par)
//!     .max_batch(4)
//!     .unconstrained_kv()
//!     .poisson(optimus::serving::TraceConfig {
//!         seed: 7,
//!         requests: 8,
//!         arrival_rate_per_s: 50.0,
//!         prompt_tokens: (32, 64),
//!         output_tokens: (8, 16),
//!     })
//!     .compile()?
//!     .run()?;
//! assert_eq!(report.report.completed, 8);
//! # Ok(())
//! # }
//! ```

use super::cluster::{
    run_disaggregated, ClusterConfig, ClusterReport, ClusterSimulator, DispatchMode, HandoffLink,
    RoutingPolicy, Topology,
};
use super::control::{AutoscaleConfig, ControlPlane};
use super::coord::{plan_global_tier, GlobalCacheConfig};
use super::engine::{DecodePricing, ServingConfig, ServingSimulator, SimCore};
use super::kv::KvLayout;
use super::observer::{NoopObserver, SimObserver};
use super::policy::{FcfsPolicy, SchedulerPolicy};
use super::prefix::{CacheEviction, PrefixCachingConfig};
use super::report::{FrontierPoint, SloClass};
use super::telemetry::{profile, Telemetry, TelemetryConfig};
use super::traces::{RequestSpec, TraceConfig, TraceSource};
use crate::error::OptimusError;
use crate::inference::InferenceEstimator;
use crate::scaling::MultiBladeSystem;
use llm_workload::kvcache::KvConvention;
use llm_workload::model::TransformerConfig;
use llm_workload::parallelism::Parallelism;
use rayon::prelude::*;
use std::fmt;

/// How the KV-cache capacity requests are admitted against is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
enum KvSizing {
    /// Per-blade main memory minus resident weights
    /// ([`ServingConfig::for_system`]) — the production default.
    ForSystem,
    /// Admission never binds ([`ServingConfig::unconstrained`]).
    Unconstrained,
    /// An explicit byte budget.
    Bytes(f64),
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn SchedulerPolicy> + Send + Sync>;
type Classifier = Box<dyn Fn(&RequestSpec) -> u32 + Send + Sync>;

/// Fluent description of a serving run: system, workload, scheduling
/// policy, KV accounting, SLO classes and blade topology. Compile it
/// with [`Self::compile`]; every validation error surfaces there as a
/// typed [`OptimusError`].
///
/// Defaults: FCFS policy, contiguous KV sized for the system, GQA
/// convention, whole-prompt prefill, bucketized-mean pricing, global
/// 10 s TTFT / 100 ms TPOT SLOs in one default class, an all-mixed
/// topology with join-shortest-queue routing and per-blade dispatch.
pub struct Scenario<'a> {
    estimator: InferenceEstimator,
    link: Option<HandoffLink>,
    default_blades: u32,
    model: Option<&'a TransformerConfig>,
    par: Option<&'a Parallelism>,
    trace: Option<Result<Vec<RequestSpec>, OptimusError>>,
    base: Option<TraceConfig>,
    topology: Option<Topology>,
    routing: RoutingPolicy,
    dispatch: DispatchMode,
    max_batch: u32,
    kv: KvSizing,
    kv_convention: KvConvention,
    kv_bucket: Option<u32>,
    layout: KvLayout,
    chunk_tokens: u32,
    pricing: DecodePricing,
    prefix: Option<PrefixCachingConfig>,
    eviction: Option<CacheEviction>,
    global: Option<GlobalCacheConfig>,
    ttft_slo_s: f64,
    tpot_slo_s: f64,
    classes: Option<Vec<SloClass>>,
    classifier: Option<Classifier>,
    policy: PolicyFactory,
    core: SimCore,
    control: Option<ControlPlane>,
    telemetry: Option<TelemetryConfig>,
}

impl fmt::Debug for Scenario<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("default_blades", &self.default_blades)
            .field("topology", &self.topology)
            .field("max_batch", &self.max_batch)
            .field("kv", &self.kv)
            .field("layout", &self.layout)
            .field("classes", &self.classes)
            .finish_non_exhaustive()
    }
}

impl<'a> Scenario<'a> {
    /// A scenario over an SCD [`MultiBladeSystem`]: per-blade estimator
    /// at the system operating point, a handoff link derived from the
    /// system fabric, and a default all-mixed topology of the system's
    /// blades.
    #[must_use]
    pub fn new(system: &MultiBladeSystem) -> Self {
        Self::with_estimator_link(
            system.inference_estimator(),
            Some(HandoffLink::from_fabric(&system.fabric())),
            system.blades(),
        )
    }

    /// A scenario over a bare per-blade estimator — for GPU baselines or
    /// custom operating points. Defaults to one blade; a disaggregated
    /// topology additionally needs [`Self::handoff`].
    #[must_use]
    pub fn on_estimator(estimator: InferenceEstimator) -> Self {
        Self::with_estimator_link(estimator, None, 1)
    }

    fn with_estimator_link(
        estimator: InferenceEstimator,
        link: Option<HandoffLink>,
        default_blades: u32,
    ) -> Self {
        Self {
            estimator,
            link,
            default_blades,
            model: None,
            par: None,
            trace: None,
            base: None,
            topology: None,
            routing: RoutingPolicy::JoinShortestQueue,
            dispatch: DispatchMode::PerBlade,
            max_batch: 8,
            kv: KvSizing::ForSystem,
            kv_convention: KvConvention::Gqa,
            kv_bucket: None,
            layout: KvLayout::Contiguous,
            chunk_tokens: 0,
            pricing: DecodePricing::BucketizedMean,
            prefix: None,
            eviction: None,
            global: None,
            ttft_slo_s: 10.0,
            tpot_slo_s: 0.1,
            classes: None,
            classifier: None,
            policy: Box::new(|| Box::new(FcfsPolicy)),
            core: SimCore::EventDriven,
            control: None,
            telemetry: None,
        }
    }

    /// The model to serve.
    #[must_use]
    pub fn model(mut self, model: &'a TransformerConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// The per-blade parallelism plan.
    #[must_use]
    pub fn parallelism(mut self, par: &'a Parallelism) -> Self {
        self.par = Some(par);
        self
    }

    /// The workload, from any [`TraceSource`] (synthetic, bursty,
    /// diurnal, recorded CSV). Materialization errors surface at
    /// [`Self::compile`].
    #[must_use]
    pub fn trace(mut self, source: &dyn TraceSource) -> Self {
        self.base = None;
        self.trace = Some(source.requests());
        self
    }

    /// A seeded-Poisson workload. Unlike [`Self::trace`] this keeps the
    /// generator, so [`CompiledScenario::frontier`] can re-synthesize it
    /// across arrival rates.
    #[must_use]
    pub fn poisson(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config.synthesize());
        self.base = Some(config);
        self
    }

    /// An explicit, pre-materialized request list.
    #[must_use]
    pub fn requests(mut self, requests: Vec<RequestSpec>) -> Self {
        self.base = None;
        self.trace = Some(Ok(requests));
        self
    }

    /// The scheduling policy (admission order + eviction victim).
    #[must_use]
    pub fn policy(mut self, policy: impl SchedulerPolicy + Clone + 'static) -> Self {
        self.policy = Box::new(move || Box::new(policy.clone()));
        self
    }

    /// Maximum concurrent sequences per blade.
    #[must_use]
    pub fn max_batch(mut self, max_batch: u32) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// KV capacity accounting: contiguous or paged.
    #[must_use]
    pub fn kv_layout(mut self, layout: KvLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Shorthand for the paged layout with `block_tokens`-token blocks.
    #[must_use]
    pub fn paged_kv(self, block_tokens: u32) -> Self {
        self.kv_layout(KvLayout::Paged { block_tokens })
    }

    /// Lifts the KV capacity constraint (admission never binds).
    #[must_use]
    pub fn unconstrained_kv(mut self) -> Self {
        self.kv = KvSizing::Unconstrained;
        self
    }

    /// An explicit KV byte budget (whole blade).
    #[must_use]
    pub fn kv_capacity_bytes(mut self, bytes: f64) -> Self {
        self.kv = KvSizing::Bytes(bytes);
        self
    }

    /// Head-count convention for KV sizing.
    #[must_use]
    pub fn kv_convention(mut self, convention: KvConvention) -> Self {
        self.kv_convention = convention;
        self
    }

    /// KV-length quantization of the iteration-cost table (tokens).
    #[must_use]
    pub fn kv_bucket(mut self, tokens: u32) -> Self {
        self.kv_bucket = Some(tokens);
        self
    }

    /// Enables chunked prefill with `chunk_tokens`-token chunks.
    #[must_use]
    pub fn chunked_prefill(mut self, chunk_tokens: u32) -> Self {
        self.chunk_tokens = chunk_tokens;
        self
    }

    /// Iteration-cost pricing mode.
    #[must_use]
    pub fn pricing(mut self, pricing: DecodePricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Which simulation core drives the replay. The event-driven core
    /// (the default) is bit-identical to [`SimCore::PerStep`] on every
    /// workload; the per-step core is retained as the reference
    /// implementation the equivalence suite checks against.
    #[must_use]
    pub fn core(mut self, core: SimCore) -> Self {
        self.core = core;
        self
    }

    /// Enables vLLM-style prefix caching with `block_tokens`-token shared
    /// blocks: requests tagged with a
    /// [`SharedPrefix`](super::prefix::SharedPrefix) (via the
    /// shared-prefix trace generator, `RequestSpec::with_prefix`, or a
    /// recorded trace's 5th/6th CSV columns) store their common prefix KV
    /// once per blade, skip its prefill on a hit, and release it to an
    /// LRU pool on completion. Off by default; with it off — or with no
    /// prefix-tagged requests — every replay is bit-identical to the
    /// pre-prefix-cache engine.
    #[must_use]
    pub fn prefix_caching(mut self, block_tokens: u32) -> Self {
        self.prefix = Some(PrefixCachingConfig {
            block_tokens,
            eviction: CacheEviction::default(),
        });
        self
    }

    /// Overrides the prefix-cache reclamation order — blade caches and
    /// the global tier alike ([`CacheEviction::Lru`] is the default;
    /// [`CacheEviction::Lfu`] keeps the popular chains of a Zipf-skewed
    /// workload resident under pressure). Needs [`Self::prefix_caching`];
    /// compile-time validated.
    #[must_use]
    pub fn cache_eviction(mut self, eviction: CacheEviction) -> Self {
        self.eviction = Some(eviction);
        self
    }

    /// Enables the cluster-level global KV cache tier (see
    /// [`super::coord`]): a `budget_tokens`-bounded [`PrefixCache`]
    /// populated by insert-through from every tagged admission. When the
    /// tier holds more of a request's prefix than the target blade's own
    /// cache, the remainder streams in over the cluster interconnect,
    /// raced against local recompute — whichever is cheaper wins. Off by
    /// default; needs [`Self::prefix_caching`] and an interconnect link
    /// (a [`MultiBladeSystem`] anchor or [`Self::handoff`]), both
    /// compile-time validated.
    ///
    /// [`PrefixCache`]: super::prefix::PrefixCache
    #[must_use]
    pub fn global_kv_cache(mut self, budget_tokens: u64) -> Self {
        self.global = Some(GlobalCacheConfig { budget_tokens });
        self
    }

    /// The global SLO pair — the targets of the default class when no
    /// explicit [`Self::slo_classes`] are given.
    #[must_use]
    pub fn slo(mut self, ttft_slo_s: f64, tpot_slo_s: f64) -> Self {
        self.ttft_slo_s = ttft_slo_s;
        self.tpot_slo_s = tpot_slo_s;
        self
    }

    /// Per-request SLO classes; requests name them by index via
    /// [`RequestSpec::class`] (see [`Self::classify`]).
    #[must_use]
    pub fn slo_classes(mut self, classes: Vec<SloClass>) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Assigns every request's SLO class at compile time (e.g. by output
    /// length, by arrival phase). Overrides classes already present on
    /// the trace.
    #[must_use]
    pub fn classify(
        mut self,
        assign: impl Fn(&RequestSpec) -> u32 + Send + Sync + 'static,
    ) -> Self {
        self.classifier = Some(Box::new(assign));
        self
    }

    /// Attaches the online control plane: a load-shedding admission gate
    /// ([`AdmissionControl`](super::AdmissionControl)) and/or a
    /// queue-depth blade autoscaler ([`AutoscaleConfig`]). The gate
    /// needs an
    /// explicit class table ([`Self::slo_classes`]) with a strict class
    /// to protect; the autoscaler needs central dispatch on a mixed
    /// topology. An empty [`ControlPlane`] is exactly no control plane.
    #[must_use]
    pub fn control(mut self, control: ControlPlane) -> Self {
        self.control = Some(control);
        self
    }

    /// Mounts the passive [`Telemetry`] layer
    /// ([`super::telemetry`]): windowed time-series, streaming tail
    /// sketches and optional self-profiling, collected by
    /// [`CompiledScenario::run_with_telemetry`]. Mounting telemetry
    /// never changes the replay — reports stay bit-identical.
    #[must_use]
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// The blade topology. Role-typed blades
    /// ([`BladeRole::Prefill`](super::BladeRole::Prefill) /
    /// [`BladeRole::Decode`](super::BladeRole::Decode)) switch the
    /// replay to the disaggregated prefill→decode event loop.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Arrival-time routing policy (mixed topologies, per-blade
    /// dispatch).
    #[must_use]
    pub fn routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Queue topology of mixed clusters: per-blade or central.
    #[must_use]
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Overrides the prefill→decode handoff link (defaults to the system
    /// fabric's blade-to-blade tier; required for disaggregated
    /// topologies on a bare estimator).
    #[must_use]
    pub fn handoff(mut self, link: HandoffLink) -> Self {
        self.link = Some(link);
        self
    }

    /// Validates and freezes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for a missing model, plan or
    /// trace, degenerate configuration values, an invalid topology, a
    /// disaggregated topology without a handoff link, a request naming
    /// an undefined SLO class, or a control plane the topology cannot
    /// host (any control on role-typed blades; an autoscaler without
    /// central dispatch, with degenerate watermarks, or bounds exceeding
    /// the blade pool; a shedding gate without a second class to shed);
    /// propagates trace-materialization and model/parallelism validation
    /// failures.
    pub fn compile(self) -> Result<CompiledScenario<'a>, OptimusError> {
        let missing = |what: &str| OptimusError::Serving {
            reason: format!("scenario is missing {what}"),
        };
        let model = self.model.ok_or_else(|| missing("a model (.model(...))"))?;
        let par = self
            .par
            .ok_or_else(|| missing("a parallelism plan (.parallelism(...))"))?;
        let mut trace = self
            .trace
            .ok_or_else(|| missing("a workload (.trace(...)/.poisson(...)/.requests(...))"))??;
        if let Some(assign) = &self.classifier {
            for r in &mut trace {
                r.class = assign(r);
            }
        }
        let mut config = match self.kv {
            KvSizing::ForSystem => {
                ServingConfig::for_system(&self.estimator, model, par, self.max_batch)?
            }
            KvSizing::Unconstrained => ServingConfig::unconstrained(self.max_batch),
            KvSizing::Bytes(bytes) => ServingConfig {
                kv_capacity_bytes: bytes,
                ..ServingConfig::unconstrained(self.max_batch)
            },
        };
        config.kv_convention = self.kv_convention;
        if let Some(bucket) = self.kv_bucket {
            config.kv_bucket_tokens = bucket;
        }
        config.kv_layout = self.layout;
        config.prefill_chunk_tokens = self.chunk_tokens;
        config.decode_pricing = self.pricing;
        config.prefix = self.prefix;
        if let Some(eviction) = self.eviction {
            match &mut config.prefix {
                Some(pc) => pc.eviction = eviction,
                None => {
                    return Err(OptimusError::Serving {
                        reason: "a cache eviction policy orders prefix-cache reclamation: \
                                 enable .prefix_caching(...) first"
                            .to_owned(),
                    })
                }
            }
        }
        config.ttft_slo_s = self.ttft_slo_s;
        config.tpot_slo_s = self.tpot_slo_s;
        config.core = self.core;

        let topology = self
            .topology
            .unwrap_or_else(|| Topology::mixed(self.default_blades));
        topology.validate()?;
        let mut autoscale = None;
        if let Some(cp) = self.control {
            if topology.is_disaggregated() && (cp.admission.is_some() || cp.autoscale.is_some()) {
                return Err(OptimusError::Serving {
                    reason: "the control plane runs on mixed topologies only: the \
                             disaggregated prefill→decode loop has no shared admission \
                             boundary to shed at nor a uniform pool to scale"
                        .to_owned(),
                });
            }
            if let Some(sc) = cp.autoscale {
                if self.dispatch != DispatchMode::Central {
                    return Err(OptimusError::Serving {
                        reason: "the autoscaler needs .dispatch(DispatchMode::Central): \
                                 per-blade routing fixes each request's blade at arrival, \
                                 so a changing blade count has nothing to act on"
                            .to_owned(),
                    });
                }
                sc.validate(topology.blades())?;
                autoscale = Some(sc);
            }
            config.admission = cp.admission;
        }
        let link = if topology.is_disaggregated() {
            let link = self.link.ok_or_else(|| OptimusError::Serving {
                reason: "a disaggregated topology needs a prefill→decode handoff link \
                         (anchor the scenario on a MultiBladeSystem or set .handoff(...))"
                    .to_owned(),
            })?;
            link.validate()?;
            Some(link)
        } else {
            self.link
        };
        let global = match self.global {
            None => None,
            Some(g) => {
                let pc = config.prefix.ok_or_else(|| OptimusError::Serving {
                    reason: "the global KV cache tier coordinates prefix caches: enable \
                             .prefix_caching(...) first"
                        .to_owned(),
                })?;
                g.validate(&pc)?;
                let tier_link = link.ok_or_else(|| OptimusError::Serving {
                    reason: "the global KV cache tier streams hits over the cluster \
                             interconnect: anchor the scenario on a MultiBladeSystem or set \
                             .handoff(...)"
                        .to_owned(),
                })?;
                tier_link.validate()?;
                Some(g)
            }
        };

        // Validate everything the engine will see once, now: the
        // simulator construction checks config, model, plan and classes.
        ServingSimulator::from_parts(
            &self.estimator,
            model,
            par,
            config,
            (self.policy)(),
            self.classes.clone(),
        )?;
        let class_count = self.classes.as_ref().map_or(1, Vec::len);
        if let Some(r) = trace.iter().find(|r| r.class as usize >= class_count) {
            return Err(OptimusError::Serving {
                reason: format!(
                    "request {} names SLO class {} but only {class_count} class(es) are defined",
                    r.id, r.class
                ),
            });
        }
        if let Some(r) = trace.iter().find(|r| {
            r.prefix
                .is_some_and(|p| p.tokens == 0 || p.tokens > r.prompt_tokens)
        }) {
            let p = r.prefix.expect("found by prefix");
            return Err(OptimusError::Serving {
                reason: format!(
                    "request {} claims a {}-token shared prefix of a {}-token prompt",
                    r.id, p.tokens, r.prompt_tokens
                ),
            });
        }
        if let Some(tc) = &self.telemetry {
            tc.validate()?;
        }
        Ok(CompiledScenario {
            estimator: self.estimator,
            model,
            par,
            config,
            classes: self.classes,
            policy: self.policy,
            classifier: self.classifier,
            trace,
            base: self.base,
            topology,
            routing: self.routing,
            dispatch: self.dispatch,
            autoscale,
            link,
            global,
            telemetry: self.telemetry,
        })
    }
}

/// A validated, immutable serving scenario. Every run path returns a
/// [`ClusterReport`] (single-blade runs are 1-blade clusters); repeated
/// runs of the same compiled scenario are bit-identical.
pub struct CompiledScenario<'a> {
    estimator: InferenceEstimator,
    model: &'a TransformerConfig,
    par: &'a Parallelism,
    config: ServingConfig,
    classes: Option<Vec<SloClass>>,
    policy: PolicyFactory,
    classifier: Option<Classifier>,
    trace: Vec<RequestSpec>,
    base: Option<TraceConfig>,
    topology: Topology,
    routing: RoutingPolicy,
    dispatch: DispatchMode,
    autoscale: Option<AutoscaleConfig>,
    link: Option<HandoffLink>,
    global: Option<GlobalCacheConfig>,
    telemetry: Option<TelemetryConfig>,
}

impl fmt::Debug for CompiledScenario<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledScenario")
            .field("model", &self.model.name)
            .field("requests", &self.trace.len())
            .field("config", &self.config)
            .field("topology", &self.topology)
            .field("routing", &self.routing)
            .field("dispatch", &self.dispatch)
            .finish_non_exhaustive()
    }
}

impl CompiledScenario<'_> {
    /// The frozen serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The materialized (classified) trace.
    #[must_use]
    pub fn trace(&self) -> &[RequestSpec] {
        &self.trace
    }

    /// The blade topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn sim(&self) -> Result<ServingSimulator<'_>, OptimusError> {
        ServingSimulator::from_parts(
            &self.estimator,
            self.model,
            self.par,
            self.config,
            (self.policy)(),
            self.classes.clone(),
        )
    }

    fn run_on(
        &self,
        trace: &[RequestSpec],
        parallel: bool,
        obs: &mut dyn SimObserver,
    ) -> Result<ClusterReport, OptimusError> {
        let mut sim = self.sim()?;
        if let (Some(global), Some(pc)) = (self.global, self.config.prefix) {
            // The coordination pre-pass walks the trace once in arrival
            // order, so the plan — and every transfer-vs-recompute race —
            // is identical across dispatch modes, cores, and parallelism.
            let link = self.link.expect("validated at compile");
            sim.set_coord(plan_global_tier(trace, pc, global, link)?);
        }
        if self.topology.is_disaggregated() {
            let link = self.link.as_ref().expect("validated at compile");
            let table = sim.cost_table(trace, parallel)?;
            Ok(run_disaggregated(
                &sim,
                trace,
                &table,
                self.topology.roles(),
                link,
                obs,
            ))
        } else {
            let cluster = ClusterSimulator::from_parts(
                sim,
                ClusterConfig {
                    blades: self.topology.blades(),
                    routing: self.routing,
                    dispatch: self.dispatch,
                    autoscale: self.autoscale,
                },
            )?;
            if parallel {
                cluster.replay(trace)
            } else {
                cluster.replay_observed(trace, obs)
            }
        }
    }

    /// Runs the scenario with the iteration-cost table built on rayon
    /// workers (and, for mixed per-blade topologies, blades replayed
    /// concurrently). Bit-identical to [`Self::run_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for degenerate requests or a
    /// request that can never fit the KV capacity; propagates estimation
    /// failures.
    pub fn run(&self) -> Result<ClusterReport, OptimusError> {
        self.run_on(&self.trace, true, &mut NoopObserver)
    }

    /// Serial reference implementation of [`Self::run`], kept as the
    /// ground truth for the rayon-equivalence suite.
    ///
    /// # Errors
    ///
    /// As for [`Self::run`].
    pub fn run_serial(&self) -> Result<ClusterReport, OptimusError> {
        self.run_on(&self.trace, false, &mut NoopObserver)
    }

    /// Runs the scenario with `observer` receiving every engine event
    /// (admissions, evictions, prefill chunks, handoffs, completions,
    /// steps). Observers are read-only, so the report is bit-identical
    /// to [`Self::run_serial`].
    ///
    /// # Errors
    ///
    /// As for [`Self::run`].
    pub fn run_observed(
        &self,
        observer: &mut dyn SimObserver,
    ) -> Result<ClusterReport, OptimusError> {
        self.run_on(&self.trace, false, observer)
    }

    /// Runs the scenario with the mounted [`Telemetry`] layer
    /// ([`Scenario::telemetry`]) collecting windowed series and tail
    /// sketches, returning the report alongside the finished collector.
    /// Telemetry is passive, so the report is bit-identical to
    /// [`Self::run`] / [`Self::run_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] when no telemetry was mounted;
    /// otherwise as for [`Self::run`].
    pub fn run_with_telemetry(&self) -> Result<(ClusterReport, Telemetry), OptimusError> {
        self.run_observed_with_telemetry(&mut NoopObserver)
    }

    /// [`Self::run_with_telemetry`] with an additional user observer
    /// riding the same replay (both see every event; the replay batches
    /// decode stretches only when `observer` is passive too).
    ///
    /// # Errors
    ///
    /// As for [`Self::run_with_telemetry`].
    pub fn run_observed_with_telemetry(
        &self,
        observer: &mut dyn SimObserver,
    ) -> Result<(ClusterReport, Telemetry), OptimusError> {
        let cfg = self.telemetry.ok_or_else(|| OptimusError::Serving {
            reason: "no telemetry mounted: build the scenario with \
                     .telemetry(TelemetryConfig { .. })"
                .to_owned(),
        })?;
        let classes = self.classes.clone().unwrap_or_else(|| {
            vec![SloClass::new(
                "default",
                self.config.ttft_slo_s,
                self.config.tpot_slo_s,
            )]
        });
        let mut tel = Telemetry::new(&cfg, self.topology.blades(), &classes)?;
        tel.set_active_blades(
            self.autoscale
                .map_or(self.topology.blades(), |a| a.min_blades),
        );
        tel.observe_arrivals(&self.trace);
        if tel.wants_profile() {
            profile::start();
        }
        let result = {
            let mut tee = Tee {
                tel: &mut tel,
                user: observer,
            };
            self.run_on(&self.trace, false, &mut tee)
        };
        if tel.wants_profile() {
            tel.set_profile(profile::stop());
        }
        let report = result?;
        tel.finish();
        Ok((report, tel))
    }

    /// Replays the scenario's trace under several routing/dispatch
    /// variants of its (mixed) topology, building the iteration-cost
    /// table once — it depends only on the per-blade engine and the
    /// trace, not on routing — and replaying the variants concurrently
    /// on rayon workers. Each report is bit-identical to a standalone
    /// [`Self::run`] of a scenario with that variant and to
    /// [`Self::run_each_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for a disaggregated topology
    /// (role-typed blades have no routing/dispatch axis to sweep);
    /// otherwise as for [`Self::run`].
    pub fn run_each(
        &self,
        variants: &[(RoutingPolicy, DispatchMode)],
    ) -> Result<Vec<ClusterReport>, OptimusError> {
        let (cluster, configs) = self.sweep_parts(variants)?;
        cluster.replay_each(&self.trace, &configs)
    }

    /// Serial reference implementation of [`Self::run_each`], kept as
    /// the ground truth for the rayon-equivalence suite.
    ///
    /// # Errors
    ///
    /// As for [`Self::run_each`].
    pub fn run_each_serial(
        &self,
        variants: &[(RoutingPolicy, DispatchMode)],
    ) -> Result<Vec<ClusterReport>, OptimusError> {
        let (cluster, configs) = self.sweep_parts(variants)?;
        cluster.replay_each_serial(&self.trace, &configs)
    }

    /// Builds the cluster simulator and the per-variant configurations a
    /// routing/dispatch sweep replays.
    fn sweep_parts(
        &self,
        variants: &[(RoutingPolicy, DispatchMode)],
    ) -> Result<(ClusterSimulator<'_>, Vec<ClusterConfig>), OptimusError> {
        if self.topology.is_disaggregated() {
            return Err(OptimusError::Serving {
                reason: "run_each sweeps routing/dispatch of a mixed topology; role-typed \
                         blades route by role instead"
                    .to_owned(),
            });
        }
        let configs: Vec<ClusterConfig> = variants
            .iter()
            .map(|&(routing, dispatch)| ClusterConfig {
                blades: self.topology.blades(),
                routing,
                dispatch,
                autoscale: self.autoscale,
            })
            .collect();
        let cluster = ClusterSimulator::from_parts(
            self.sim()?,
            ClusterConfig {
                blades: self.topology.blades(),
                routing: self.routing,
                dispatch: self.dispatch,
                autoscale: self.autoscale,
            },
        )?;
        Ok((cluster, configs))
    }

    /// Sweeps arrival rates into an SLO-vs-throughput frontier by
    /// re-synthesizing the scenario's Poisson workload at each rate and
    /// replaying the full topology (rates run concurrently; each replay
    /// is deterministic, so the frontier is too).
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] when the scenario was not built
    /// from [`Scenario::poisson`]; otherwise as for [`Self::run`], plus
    /// trace-synthesis failures.
    pub fn frontier(&self, rates: &[f64]) -> Result<Vec<FrontierPoint>, OptimusError> {
        let base = self.base.ok_or_else(|| OptimusError::Serving {
            reason: "the SLO frontier needs a re-synthesizable Poisson workload \
                     (build the scenario with .poisson(...))"
                .to_owned(),
        })?;
        rates
            .par_iter()
            .map(|&rate| {
                let mut trace = TraceConfig {
                    arrival_rate_per_s: rate,
                    ..base
                }
                .synthesize()?;
                if let Some(assign) = &self.classifier {
                    for r in &mut trace {
                        r.class = assign(r);
                    }
                }
                // The classifier ran on a fresh trace (the compile-time
                // check covered the base trace only); the engine's trace
                // validation re-checks its class indices with the same
                // typed error compile() raises.
                let report = self.run_on(&trace, false, &mut NoopObserver)?;
                Ok(FrontierPoint {
                    arrival_rate_per_s: rate,
                    report: report.report,
                })
            })
            .collect()
    }
}

/// Forwards every engine event to the telemetry collector and a user
/// observer riding the same replay. Passive only when the user side is
/// (telemetry itself always is), so mounting telemetry alone keeps the
/// event core's batched fast paths.
struct Tee<'t, 'o> {
    tel: &'t mut Telemetry,
    user: &'o mut dyn SimObserver,
}

impl SimObserver for Tee<'_, '_> {
    fn on_admission(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        self.tel.on_admission(blade, clock_s, request);
        self.user.on_admission(blade, clock_s, request);
    }

    fn on_eviction(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, wasted_tokens: u32) {
        self.tel.on_eviction(blade, clock_s, request, wasted_tokens);
        self.user
            .on_eviction(blade, clock_s, request, wasted_tokens);
    }

    fn on_chunk(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, chunk_tokens: u32) {
        self.tel.on_chunk(blade, clock_s, request, chunk_tokens);
        self.user.on_chunk(blade, clock_s, request, chunk_tokens);
    }

    fn on_handoff(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, transfer_s: f64) {
        self.tel.on_handoff(blade, clock_s, request, transfer_s);
        self.user.on_handoff(blade, clock_s, request, transfer_s);
    }

    fn on_completion(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        self.tel.on_completion(blade, clock_s, request);
        self.user.on_completion(blade, clock_s, request);
    }

    fn on_outcome(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, first_token_s: f64) {
        self.tel.on_outcome(blade, clock_s, request, first_token_s);
        self.user.on_outcome(blade, clock_s, request, first_token_s);
    }

    fn on_cache_hit(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, cached: u32) {
        self.tel.on_cache_hit(blade, clock_s, request, cached);
        self.user.on_cache_hit(blade, clock_s, request, cached);
    }

    fn on_cache_miss(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        self.tel.on_cache_miss(blade, clock_s, request);
        self.user.on_cache_miss(blade, clock_s, request);
    }

    fn on_cache_evict(&mut self, blade: u32, clock_s: f64, block_tokens: u32) {
        self.tel.on_cache_evict(blade, clock_s, block_tokens);
        self.user.on_cache_evict(blade, clock_s, block_tokens);
    }

    fn on_remote_cache_hit(
        &mut self,
        blade: u32,
        clock_s: f64,
        request: &RequestSpec,
        remote_tokens: u32,
        transfer_s: f64,
        streamed: bool,
    ) {
        self.tel
            .on_remote_cache_hit(blade, clock_s, request, remote_tokens, transfer_s, streamed);
        self.user
            .on_remote_cache_hit(blade, clock_s, request, remote_tokens, transfer_s, streamed);
    }

    fn on_step(&mut self, blade: u32, clock_s: f64, step_s: f64, decoding: u32) {
        self.tel.on_step(blade, clock_s, step_s, decoding);
        self.user.on_step(blade, clock_s, step_s, decoding);
    }

    fn on_kv_sample(&mut self, blade: u32, clock_s: f64, kv_tokens: u64, shared_tokens: u64) {
        self.tel
            .on_kv_sample(blade, clock_s, kv_tokens, shared_tokens);
        self.user
            .on_kv_sample(blade, clock_s, kv_tokens, shared_tokens);
    }

    fn on_stretch(
        &mut self,
        blade: u32,
        clock_s: f64,
        iterations: u64,
        step_s: f64,
        decoding: u32,
        kv_tokens: u64,
    ) {
        self.tel
            .on_stretch(blade, clock_s, iterations, step_s, decoding, kv_tokens);
        self.user
            .on_stretch(blade, clock_s, iterations, step_s, decoding, kv_tokens);
    }

    fn on_shed(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        self.tel.on_shed(blade, clock_s, request);
        self.user.on_shed(blade, clock_s, request);
    }

    fn on_scale(&mut self, clock_s: f64, active_from: u32, active_to: u32) {
        self.tel.on_scale(clock_s, active_from, active_to);
        self.user.on_scale(clock_s, active_from, active_to);
    }

    fn is_passive(&self) -> bool {
        self.user.is_passive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::observer::CountingObserver;
    use crate::serving::telemetry::TailMetric;
    use crate::serving::{BladeRole, SjfPolicy};
    use llm_workload::model::ModelZoo;

    fn parts() -> (MultiBladeSystem, TransformerConfig, Parallelism) {
        (
            MultiBladeSystem::new(4).unwrap(),
            ModelZoo::llama2_7b(),
            Parallelism::new(1, 1, 1).unwrap(),
        )
    }

    /// Prefill-heavy flash crowds: the workload disaggregation exists for.
    fn prefill_heavy_trace() -> TraceConfig {
        TraceConfig {
            seed: 31,
            requests: 32,
            arrival_rate_per_s: 60.0,
            prompt_tokens: (384, 768),
            output_tokens: (8, 24),
        }
    }

    fn scenario<'a>(
        system: &MultiBladeSystem,
        model: &'a TransformerConfig,
        par: &'a Parallelism,
    ) -> Scenario<'a> {
        Scenario::new(system)
            .model(model)
            .parallelism(par)
            .max_batch(6)
            .unconstrained_kv()
            .poisson(prefill_heavy_trace())
    }

    #[test]
    fn scenario_runs_are_bit_deterministic_and_serial_parallel_equal() {
        let (system, model, par) = parts();
        let compiled = scenario(&system, &model, &par).compile().unwrap();
        let a = compiled.run().unwrap();
        let b = compiled.run().unwrap();
        assert_eq!(a, b, "repeated runs must be bit-identical");
        assert_eq!(a, compiled.run_serial().unwrap(), "serial == parallel");

        let disagg = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(2, 2))
            .compile()
            .unwrap();
        assert_eq!(
            disagg.run().unwrap(),
            disagg.run_serial().unwrap(),
            "disaggregated serial == parallel"
        );
    }

    #[test]
    fn disaggregated_split_beats_mixed_on_prefill_interference() {
        // 2 prefill + 2 decode blades vs 4 mixed blades on a
        // prefill-heavy burst: isolating prompt passes on dedicated
        // blades keeps long prefills out of the decode iterations, so
        // the worst decode stall (max_step_s) and the inter-token tail
        // (TPOT p99) must both improve.
        let (system, model, par) = parts();
        let mixed = scenario(&system, &model, &par)
            .topology(Topology::mixed(4))
            .compile()
            .unwrap()
            .run()
            .unwrap();
        let disagg = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(2, 2))
            .compile()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(mixed.report.completed, 32);
        assert_eq!(disagg.report.completed, 32);
        assert!(
            disagg.report.max_step_s < mixed.report.max_step_s,
            "dedicated prefill blades must bound the decode stall: {} vs {}",
            disagg.report.max_step_s,
            mixed.report.max_step_s
        );
        assert!(
            disagg.report.tpot.p99 < mixed.report.tpot.p99,
            "disaggregation must cut the inter-token tail: {} vs {}",
            disagg.report.tpot.p99,
            mixed.report.tpot.p99
        );
        // Role bookkeeping: prefill blades complete nothing; decode
        // blades complete everything.
        let roles: Vec<BladeRole> = disagg.per_blade.iter().map(|b| b.role).collect();
        assert_eq!(
            roles,
            vec![
                BladeRole::Prefill,
                BladeRole::Prefill,
                BladeRole::Decode,
                BladeRole::Decode
            ]
        );
        for b in &disagg.per_blade {
            match b.role {
                BladeRole::Prefill => {
                    assert_eq!(b.requests, 0, "prefill blades hand everything off");
                    assert!(b.busy_s > 0.0, "prefill blades did real work");
                }
                _ => assert!(b.requests > 0, "decode blades complete requests"),
            }
        }
        assert_eq!(disagg.per_blade.iter().map(|b| b.requests).sum::<u32>(), 32);
        // Every blade in the mixed run is Mixed.
        assert!(mixed.per_blade.iter().all(|b| b.role == BladeRole::Mixed));
    }

    #[test]
    fn handoff_link_costs_time() {
        // Same disaggregated split, but a pathologically slow handoff
        // link: the makespan and TTFT must strictly grow.
        let (system, model, par) = parts();
        let fast = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(2, 2))
            .compile()
            .unwrap()
            .run()
            .unwrap();
        let slow = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(2, 2))
            .handoff(HandoffLink {
                bytes_per_s: 1e6, // 1 MB/s: KV streams dominate
                latency_s: 0.01,
            })
            .compile()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(slow.report.completed, 32);
        assert!(slow.report.ttft.p50 > fast.report.ttft.p50);
        assert!(slow.report.makespan_s > fast.report.makespan_s);
    }

    #[test]
    fn run_each_matches_standalone_runs_off_one_table() {
        let (system, model, par) = parts();
        let variants = [
            (RoutingPolicy::RoundRobin, DispatchMode::PerBlade),
            (RoutingPolicy::JoinShortestQueue, DispatchMode::Central),
        ];
        let reports = scenario(&system, &model, &par)
            .compile()
            .unwrap()
            .run_each(&variants)
            .unwrap();
        assert_eq!(reports.len(), 2);
        for (&(routing, dispatch), swept) in variants.iter().zip(&reports) {
            let standalone = scenario(&system, &model, &par)
                .routing(routing)
                .dispatch(dispatch)
                .compile()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(swept, &standalone, "{routing} / {dispatch:?}");
        }
        // Role-typed topologies have no routing axis to sweep.
        let disagg = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(2, 2))
            .compile()
            .unwrap();
        assert!(matches!(
            disagg.run_each(&variants),
            Err(OptimusError::Serving { .. })
        ));
    }

    #[test]
    fn topology_validation_is_typed() {
        let (system, model, par) = parts();
        for topology in [
            Topology::from_roles(vec![]),
            Topology::from_roles(vec![BladeRole::Decode, BladeRole::Decode]),
            Topology::from_roles(vec![BladeRole::Prefill, BladeRole::Prefill]),
        ] {
            let err = scenario(&system, &model, &par)
                .topology(topology.clone())
                .compile();
            assert!(
                matches!(err, Err(OptimusError::Serving { .. })),
                "{topology:?} must be rejected"
            );
        }
        // Mixed blades are decode-capable alongside dedicated prefill.
        let ok = scenario(&system, &model, &par)
            .topology(Topology::from_roles(vec![
                BladeRole::Prefill,
                BladeRole::Mixed,
            ]))
            .compile()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(ok.report.completed, 32);

        // A bare estimator has no fabric: disaggregation needs .handoff.
        let est = system.inference_estimator();
        let bare = Scenario::on_estimator(est)
            .model(&model)
            .parallelism(&par)
            .unconstrained_kv()
            .poisson(prefill_heavy_trace())
            .topology(Topology::disaggregated(1, 1))
            .compile();
        assert!(matches!(bare, Err(OptimusError::Serving { .. })));
    }

    #[test]
    fn slo_classes_split_goodput_and_weights_blend() {
        let (system, model, par) = parts();
        let compiled = scenario(&system, &model, &par)
            .slo_classes(vec![
                SloClass::new("interactive", 0.5, 0.05).with_weight(3.0),
                SloClass::batch(),
            ])
            .classify(|r| u32::from(r.prompt_tokens > 500))
            .compile()
            .unwrap();
        // The classifier actually split the population.
        let classes: Vec<u32> = compiled.trace().iter().map(|r| r.class).collect();
        assert!(classes.contains(&0) && classes.contains(&1));
        let report = compiled.run().unwrap().report;
        assert_eq!(report.per_class.len(), 2);
        let interactive = report.class("interactive").unwrap();
        let batch = report.class("batch").unwrap();
        assert_eq!(interactive.requests + batch.requests, report.requests);
        // Per-class goodputs blend into the global figure...
        let sum = interactive.goodput_tok_s + batch.goodput_tok_s;
        assert!((sum - report.goodput_tok_s).abs() <= 1e-9 * report.goodput_tok_s.max(1.0));
        // ...and the weighted blend honors the 3× interactive weight.
        let weighted = 3.0 * interactive.goodput_tok_s + batch.goodput_tok_s;
        assert!((report.weighted_goodput_tok_s() - weighted).abs() <= f64::EPSILON * weighted);
    }

    #[test]
    fn out_of_range_class_indices_are_typed_errors_everywhere() {
        use crate::serving::CsvTrace;
        let (system, model, par) = parts();
        // A classifier naming a class past the table fails at compile().
        let err = scenario(&system, &model, &par)
            .slo_classes(vec![SloClass::interactive(), SloClass::batch()])
            .classify(|r| 2 + u32::from(r.prompt_tokens > 500))
            .compile();
        match err {
            Err(OptimusError::Serving { reason }) => {
                assert!(reason.contains("names SLO class"), "{reason}");
                assert!(reason.contains("2 class(es)"), "{reason}");
            }
            other => panic!("expected a typed class error, got {other:?}"),
        }
        // A recorded trace's class column is held to the same check.
        let csv = CsvTrace::parse("0.0,64,8,0\n1.0,32,4,3\n").unwrap();
        let err = scenario(&system, &model, &par)
            .trace(&csv)
            .slo_classes(vec![SloClass::interactive(), SloClass::batch()])
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason }) if reason.contains("class 3")),
            "{err:?}"
        );
        // With one (default) class, any nonzero CSV class is rejected.
        let err = scenario(&system, &model, &par).trace(&csv).compile();
        assert!(matches!(err, Err(OptimusError::Serving { .. })));
        // frontier() re-classifies freshly synthesized traces: a
        // classifier that only misbehaves on them (here: keyed on
        // arrival times, which stretch at low rates) still surfaces the
        // same typed error instead of an out-of-range panic downstream.
        let compiled = scenario(&system, &model, &par)
            .slo_classes(vec![SloClass::interactive(), SloClass::batch()])
            .classify(|r| u32::from(r.arrival_s > 2.0) * 9)
            .compile()
            .expect("the 60 req/s base trace finishes arriving before t = 2 s");
        let err = compiled.frontier(&[5.0]);
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason })
                if reason.contains("names SLO class")),
            "{err:?}"
        );
    }

    #[test]
    fn control_plane_validation_is_typed() {
        use crate::serving::AdmissionControl;
        let (system, model, par) = parts();
        let two_classes = || {
            vec![
                SloClass::new("interactive", 0.5, 0.02).with_weight(2.0),
                SloClass::batch(),
            ]
        };
        // Any control on a disaggregated topology is rejected.
        let err = scenario(&system, &model, &par)
            .slo_classes(two_classes())
            .topology(Topology::disaggregated(2, 2))
            .control(ControlPlane::new().shed(AdmissionControl::new(0, 0.9)))
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason }) if reason.contains("mixed")),
            "{err:?}"
        );
        // The autoscaler needs central dispatch...
        let err = scenario(&system, &model, &par)
            .control(ControlPlane::new().autoscale(AutoscaleConfig::new(1, 4)))
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason }) if reason.contains("Central")),
            "{err:?}"
        );
        // ...and bounds inside the blade pool.
        let err = scenario(&system, &model, &par)
            .dispatch(DispatchMode::Central)
            .control(ControlPlane::new().autoscale(AutoscaleConfig::new(1, 8)))
            .compile();
        assert!(matches!(err, Err(OptimusError::Serving { .. })), "{err:?}");
        // The shedding gate needs a class table with something to shed.
        let err = scenario(&system, &model, &par)
            .control(ControlPlane::new().shed(AdmissionControl::new(0, 0.9)))
            .compile();
        assert!(matches!(err, Err(OptimusError::Serving { .. })), "{err:?}");
        // An empty control plane is exactly no control plane.
        let plain = scenario(&system, &model, &par).compile().unwrap();
        let empty = scenario(&system, &model, &par)
            .control(ControlPlane::new())
            .compile()
            .unwrap();
        assert_eq!(plain.run().unwrap(), empty.run().unwrap());
        // A valid full control plane compiles and runs on both cores
        // identically.
        let mk = |core| {
            scenario(&system, &model, &par)
                .core(core)
                .slo_classes(two_classes())
                .classify(|r| u32::from(r.prompt_tokens > 500))
                .dispatch(DispatchMode::Central)
                .control(
                    ControlPlane::new()
                        .shed(AdmissionControl::new(0, 0.9))
                        .autoscale(AutoscaleConfig::new(1, 4).with_watermarks(0, 4)),
                )
                .compile()
                .unwrap()
                .run()
                .unwrap()
        };
        let event = mk(SimCore::EventDriven);
        assert_eq!(event, mk(SimCore::PerStep));
        assert_eq!(
            u64::from(event.report.completed) + event.report.shed_requests,
            u64::from(event.report.requests)
        );
    }

    /// Two hot 256-token prefixes over round-robin routing: each blade
    /// keeps seeing one prefix, so the first arrival per blade is a
    /// local miss the global tier already covers.
    fn tagged_trace() -> Vec<RequestSpec> {
        (0..24)
            .map(|i| {
                RequestSpec::new(i, f64::from(i) * 0.01, 320, 8)
                    .with_prefix(1 + u64::from(i % 2), 256)
            })
            .collect()
    }

    #[test]
    fn global_tier_streams_cold_blades_warm_and_stays_bit_identical() {
        let (system, model, par) = parts();
        let mk = |core| {
            Scenario::new(&system)
                .model(&model)
                .parallelism(&par)
                .max_batch(6)
                .unconstrained_kv()
                .requests(tagged_trace())
                .routing(RoutingPolicy::RoundRobin)
                .prefix_caching(16)
                .global_kv_cache(1 << 20)
                .handoff(HandoffLink {
                    bytes_per_s: 1e12,
                    latency_s: 1e-6,
                })
                .core(core)
                .compile()
                .unwrap()
        };
        let event = mk(SimCore::EventDriven).run().unwrap();
        let r = &event.report;
        assert!(r.remote_prefix_hits > 0, "cold blades must hit the tier");
        assert_eq!(
            r.remote_prefix_streams + r.remote_prefix_recomputes,
            r.remote_prefix_hits,
            "every tier hit resolves its race one way"
        );
        assert!(
            r.remote_prefix_streams > 0 && r.remote_kv_streamed_bytes > 0.0,
            "a TB/s link must win at least one race: {r}"
        );
        assert_eq!(
            event.per_blade.iter().map(|b| b.remote_hits).sum::<u64>(),
            r.remote_prefix_hits
        );
        // Bit-identical across cores and serial/parallel replay.
        assert_eq!(event, mk(SimCore::PerStep).run().unwrap());
        assert_eq!(event, mk(SimCore::EventDriven).run_serial().unwrap());
        // A pathologically slow link loses every race to recompute — the
        // tier can only ever help, never hurt.
        let slow = Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
            .requests(tagged_trace())
            .routing(RoutingPolicy::RoundRobin)
            .prefix_caching(16)
            .global_kv_cache(1 << 20)
            .handoff(HandoffLink {
                bytes_per_s: 1.0,
                latency_s: 10.0,
            })
            .compile()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(slow.report.remote_prefix_streams, 0);
        assert_eq!(
            slow.report.remote_prefix_recomputes,
            slow.report.remote_prefix_hits
        );
        assert!(slow.report.makespan_s <= event.report.makespan_s + 1e-12);
    }

    #[test]
    fn cluster_cache_coordination_misconfigurations_are_typed() {
        let (system, model, par) = parts();
        // The tier coordinates prefix caches; without one it's a typo.
        let err = scenario(&system, &model, &par)
            .global_kv_cache(1 << 20)
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason })
                if reason.contains("prefix_caching")),
            "{err:?}"
        );
        // So does an eviction-order override.
        let err = scenario(&system, &model, &par)
            .cache_eviction(CacheEviction::Lfu)
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason })
                if reason.contains("prefix_caching")),
            "{err:?}"
        );
        // A tier budget below one block can never cache anything.
        let err = scenario(&system, &model, &par)
            .prefix_caching(16)
            .global_kv_cache(15)
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason }) if reason.contains("block")),
            "{err:?}"
        );
        // A bare estimator has no interconnect for tier hits to stream
        // over.
        let err = Scenario::on_estimator(system.inference_estimator())
            .model(&model)
            .parallelism(&par)
            .unconstrained_kv()
            .poisson(prefill_heavy_trace())
            .prefix_caching(16)
            .global_kv_cache(1 << 20)
            .compile();
        assert!(
            matches!(err, Err(OptimusError::Serving { ref reason })
                if reason.contains("handoff")),
            "{err:?}"
        );
        // The full coordination stack compiles when everything is wired.
        assert!(scenario(&system, &model, &par)
            .prefix_caching(16)
            .cache_eviction(CacheEviction::Lfu)
            .global_kv_cache(1 << 20)
            .routing(RoutingPolicy::CacheAware)
            .compile()
            .is_ok());
    }

    #[test]
    fn observer_sees_the_whole_replay_without_perturbing_it() {
        let (system, model, par) = parts();
        let compiled = scenario(&system, &model, &par)
            .topology(Topology::disaggregated(1, 3))
            .policy(SjfPolicy)
            .compile()
            .unwrap();
        let mut observer = CountingObserver::default();
        let observed = compiled.run_observed(&mut observer).unwrap();
        let counts = observer.counts();
        assert_eq!(observed, compiled.run().unwrap(), "observers are read-only");
        assert_eq!(counts.completions, 32);
        assert_eq!(counts.outcomes, counts.completions);
        assert!(
            counts.handoffs >= 32,
            "every request streams through the fabric at least once, got {}",
            counts.handoffs
        );
        assert!(counts.admissions >= 32);
        assert!(counts.steps > 0);
        assert_eq!(
            counts.kv_samples, counts.steps,
            "one occupancy gauge per dispatched iteration"
        );
        assert_eq!(counts.stretches, 0, "summaries are for passive observers");
    }

    #[test]
    fn telemetry_mounts_passively_and_sums_match_the_report() {
        let (system, model, par) = parts();
        let base = || scenario(&system, &model, &par).policy(SjfPolicy);
        let plain = base().compile().unwrap().run().unwrap();
        let compiled = base()
            .telemetry(TelemetryConfig {
                window_s: 0.05,
                max_windows: 128,
                profile: true,
            })
            .compile()
            .unwrap();
        let (report, tel) = compiled.run_with_telemetry().unwrap();
        assert_eq!(report, plain, "telemetry must be bit-inert");
        let windows = tel.cluster_windows();
        let completions: u64 = windows.iter().map(|w| w.completions).sum();
        assert_eq!(completions, u64::from(report.report.completed));
        let arrivals: u64 = windows.iter().map(|w| w.arrivals).sum();
        assert_eq!(arrivals, compiled.trace().len() as u64);
        let tail = tel.tail(TailMetric::Latency);
        assert_eq!(tail.count, u64::from(report.report.completed));
        // Under 5 observations the sketch is exact nearest-rank; at 32
        // it is converged enough to land inside the observed range.
        let p99 = tail.p99.unwrap();
        assert!(p99 > 0.0 && p99 <= report.report.latency.p99 * 1.5);
        // The profile was captured around the replay (all-zero only
        // when the self-profile feature is compiled out).
        let profile = tel.profile().expect("profile requested");
        #[cfg(feature = "self-profile")]
        {
            assert!(profile.admission_rounds > 0, "every step scans admission");
            assert!(profile.admission_s >= 0.0);
        }
        #[cfg(not(feature = "self-profile"))]
        assert!(profile.is_empty());
    }

    #[test]
    fn telemetry_requires_mounting_and_valid_dials() {
        let (system, model, par) = parts();
        let compiled = scenario(&system, &model, &par).compile().unwrap();
        assert!(matches!(
            compiled.run_with_telemetry(),
            Err(OptimusError::Serving { .. })
        ));
        let bad = scenario(&system, &model, &par)
            .telemetry(TelemetryConfig {
                window_s: 0.0,
                ..TelemetryConfig::default()
            })
            .compile();
        assert!(matches!(bad, Err(OptimusError::Serving { .. })));
    }
}
