//! Design database: parameterized netlist generators for the blocks listed
//! in Fig. 1h ("Adder8, Crossbar, Shift Register, Register File,
//! Multiplier, ALU, MAC, ...").
//!
//! Every generator returns a technology-independent [`Netlist`] that the
//! [`StarlingFlow`](crate::flow::StarlingFlow) lowers to PCL. The bf16 MAC
//! is the calibration anchor: the paper quotes ~8 kJJ for its
//! "8-bit add, 8-bit multiply and 32-bit accumulate" MAC, which this
//! generator reproduces within the fidelity of the cell-cost model.

use crate::error::EdaError;
use crate::netlist::{LogicOp, Netlist, NodeId};

/// Maximum supported bus width for the generators.
pub const MAX_WIDTH: usize = 64;

fn check_width(generator: &'static str, width: usize) -> Result<(), EdaError> {
    if width == 0 || width > MAX_WIDTH {
        Err(EdaError::UnsupportedWidth {
            generator,
            width,
            supported: "1..=64",
        })
    } else {
        Ok(())
    }
}

/// Adds `width` inputs named `prefix0..`, LSB first.
fn bus_inputs(n: &mut Netlist, prefix: &str, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| n.add_input(format!("{prefix}{i}")))
        .collect()
}

/// Registers a bus of outputs named `prefix0..`, LSB first.
fn bus_outputs(n: &mut Netlist, prefix: &str, bits: &[NodeId]) {
    for (i, &b) in bits.iter().enumerate() {
        n.add_output(format!("{prefix}{i}"), b);
    }
}

/// Emits sum/carry gates for one full-adder position (fusable by the
/// mapper into a single FA cell).
fn fa_gates(n: &mut Netlist, a: NodeId, b: NodeId, c: NodeId) -> (NodeId, NodeId) {
    let sum = n.add_gate(LogicOp::Xor, vec![a, b, c]).expect("fa sum");
    let carry = n.add_gate(LogicOp::Maj, vec![a, b, c]).expect("fa carry");
    (sum, carry)
}

/// Emits sum/carry gates for a half-adder position.
fn ha_gates(n: &mut Netlist, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    let sum = n.add_gate(LogicOp::Xor, vec![a, b]).expect("ha sum");
    let carry = n.add_gate(LogicOp::And, vec![a, b]).expect("ha carry");
    (sum, carry)
}

/// Ripple-carry addition over two equal-width buses; returns (sum bits,
/// carry out).
fn ripple_add(n: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> (Vec<NodeId>, NodeId) {
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = fa_gates(n, x, y, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Kogge–Stone parallel-prefix addition over two equal-width buses;
/// returns (sum bits, carry out). O(log n) depth, which is what keeps
/// phase-padding overhead low in deeply-pipelined PCL datapaths.
fn kogge_stone_add(
    n: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    let width = a.len();
    let mut g: Vec<NodeId> = Vec::with_capacity(width);
    let mut p: Vec<NodeId> = Vec::with_capacity(width);
    for i in 0..width {
        g.push(n.add_gate(LogicOp::And, vec![a[i], b[i]]).expect("g"));
        p.push(n.add_gate(LogicOp::Xor, vec![a[i], b[i]]).expect("p"));
    }
    let p0c = n.add_gate(LogicOp::And, vec![p[0], cin]).expect("p0c");
    g[0] = n.add_gate(LogicOp::Or, vec![g[0], p0c]).expect("g0");

    let mut dist = 1;
    let mut gp: Vec<(NodeId, NodeId)> = g.into_iter().zip(p.iter().copied()).collect();
    while dist < width {
        let prev = gp.clone();
        for i in dist..width {
            let (gj, pj) = prev[i - dist];
            let (gi, pi) = prev[i];
            let t = n.add_gate(LogicOp::And, vec![pi, gj]).expect("t");
            let gn = n.add_gate(LogicOp::Or, vec![gi, t]).expect("gn");
            let pn = n.add_gate(LogicOp::And, vec![pi, pj]).expect("pn");
            gp[i] = (gn, pn);
        }
        dist *= 2;
    }

    let mut sums = Vec::with_capacity(width);
    sums.push(n.add_gate(LogicOp::Xor, vec![p[0], cin]).expect("s0"));
    for i in 1..width {
        sums.push(
            n.add_gate(LogicOp::Xor, vec![p[i], gp[i - 1].0])
                .expect("si"),
        );
    }
    (sums, gp[width - 1].0)
}

/// Ripple-carry adder: inputs `a*`, `b*`, `cin`; outputs `s*`, `cout`.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=64`.
///
/// ```
/// use scd_eda::blocks::ripple_adder;
///
/// let adder8 = ripple_adder(8)?; // the "Adder8" database entry
/// assert_eq!(adder8.inputs().len(), 17); // 8 + 8 + carry-in
/// # Ok::<(), scd_eda::EdaError>(())
/// ```
pub fn ripple_adder(width: usize) -> Result<Netlist, EdaError> {
    check_width("ripple_adder", width)?;
    let mut n = Netlist::new(format!("adder{width}"));
    let a = bus_inputs(&mut n, "a", width);
    let b = bus_inputs(&mut n, "b", width);
    let cin = n.add_input("cin");
    let (sums, cout) = ripple_add(&mut n, &a, &b, cin);
    bus_outputs(&mut n, "s", &sums);
    n.add_output("cout", cout);
    Ok(n)
}

/// Kogge–Stone parallel-prefix adder: same interface as
/// [`ripple_adder`] but with O(log n) logic depth — the ablation partner
/// for the latency-vs-junctions trade-off.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=64`.
pub fn kogge_stone_adder(width: usize) -> Result<Netlist, EdaError> {
    check_width("kogge_stone_adder", width)?;
    let mut n = Netlist::new(format!("ks_adder{width}"));
    let a = bus_inputs(&mut n, "a", width);
    let b = bus_inputs(&mut n, "b", width);
    let cin = n.add_input("cin");

    let (sums, cout) = kogge_stone_add(&mut n, &a, &b, cin);
    bus_outputs(&mut n, "s", &sums);
    n.add_output("cout", cout);
    Ok(n)
}

/// Unsigned array multiplier: inputs `a*`, `b*` of `width` bits, output
/// `p*` of `2·width` bits. Carry-save reduction with a final ripple stage.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=32` (the product
/// must fit the 64-bit verification word).
pub fn array_multiplier(width: usize) -> Result<Netlist, EdaError> {
    if width == 0 || width > 32 {
        return Err(EdaError::UnsupportedWidth {
            generator: "array_multiplier",
            width,
            supported: "1..=32",
        });
    }
    let mut n = Netlist::new(format!("mult{width}"));
    let a = bus_inputs(&mut n, "a", width);
    let b = bus_inputs(&mut n, "b", width);

    // Partial products per column.
    let out_bits = 2 * width;
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = n.add_gate(LogicOp::And, vec![ai, bj])?;
            columns[i + j].push(pp);
        }
    }

    // Carry-save reduction: repeatedly compress columns with FAs/HAs.
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
        for col in 0..out_bits {
            let bits = std::mem::take(&mut columns[col]);
            let mut it = bits.into_iter().peekable();
            while it.peek().is_some() {
                let x = it.next().unwrap();
                match (it.next(), it.next()) {
                    (Some(y), Some(z)) => {
                        let (s, c) = fa_gates(&mut n, x, y, z);
                        next[col].push(s);
                        if col + 1 < out_bits {
                            next[col + 1].push(c);
                        }
                    }
                    (Some(y), None) => {
                        let (s, c) = ha_gates(&mut n, x, y);
                        next[col].push(s);
                        if col + 1 < out_bits {
                            next[col + 1].push(c);
                        }
                    }
                    (None, _) => next[col].push(x),
                }
            }
        }
        columns = next;
    }

    // Final carry-propagate stage over the two remaining rows.
    let zero = n.add_const(false);
    let row_a: Vec<NodeId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NodeId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let (product, _) = kogge_stone_add(&mut n, &row_a, &row_b, zero);
    bus_outputs(&mut n, "p", &product);
    Ok(n)
}

/// The paper's bf16 MAC datapath: 8-bit mantissa multiply, 8-bit exponent
/// add and 32-bit accumulate (§III "High Throughput Compute Core").
///
/// Inputs: `ma*`/`mb*` (8-bit mantissas), `ea*`/`eb*` (8-bit exponents),
/// `acc*` (32-bit accumulator). Outputs: `r*` (32-bit accumulate result),
/// `e*` (8-bit exponent sum). Rounding/normalization is folded into the
/// control complex in the paper and omitted here, matching its
/// "8-bit add, 8-bit multiply and 32 bit accumulate" description.
///
/// # Errors
///
/// Infallible in practice; reported for interface uniformity.
pub fn bf16_mac() -> Result<Netlist, EdaError> {
    let mut n = Netlist::new("bf16_mac");
    let ma = bus_inputs(&mut n, "ma", 8);
    let mb = bus_inputs(&mut n, "mb", 8);
    let ea = bus_inputs(&mut n, "ea", 8);
    let eb = bus_inputs(&mut n, "eb", 8);
    let acc = bus_inputs(&mut n, "acc", 32);

    // 8×8 mantissa product (16 bits), built inline like array_multiplier.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 16];
    for (i, &ai) in ma.iter().enumerate() {
        for (j, &bj) in mb.iter().enumerate() {
            let pp = n.add_gate(LogicOp::And, vec![ai, bj])?;
            columns[i + j].push(pp);
        }
    }
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); 16];
        for col in 0..16 {
            let bits = std::mem::take(&mut columns[col]);
            let mut it = bits.into_iter().peekable();
            while it.peek().is_some() {
                let x = it.next().unwrap();
                match (it.next(), it.next()) {
                    (Some(y), Some(z)) => {
                        let (s, c) = fa_gates(&mut n, x, y, z);
                        next[col].push(s);
                        if col + 1 < 16 {
                            next[col + 1].push(c);
                        }
                    }
                    (Some(y), None) => {
                        let (s, c) = ha_gates(&mut n, x, y);
                        next[col].push(s);
                        if col + 1 < 16 {
                            next[col + 1].push(c);
                        }
                    }
                    (None, _) => next[col].push(x),
                }
            }
        }
        columns = next;
    }
    let zero = n.add_const(false);
    let row_a: Vec<NodeId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NodeId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let (product, _) = kogge_stone_add(&mut n, &row_a, &row_b, zero);

    // Exponent path: 8-bit add.
    let (esum, _) = kogge_stone_add(&mut n, &ea, &eb, zero);
    bus_outputs(&mut n, "e", &esum);

    // Accumulate: zero-extend the 16-bit product to 32 bits and add.
    let wide_product: Vec<NodeId> = product
        .iter()
        .copied()
        .chain(std::iter::repeat(zero))
        .take(32)
        .collect();
    let (result, _) = kogge_stone_add(&mut n, &acc, &wide_product, zero);
    bus_outputs(&mut n, "r", &result);
    Ok(n)
}

/// ALU opcodes for [`alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `a + b`.
    Add,
    /// `a - b` (two's complement).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

impl AluOp {
    /// 3-bit encoding `[op0, op1, op2]`, LSB first.
    #[must_use]
    pub fn encoding(self) -> [bool; 3] {
        match self {
            Self::Add => [false, false, false],
            Self::Sub => [true, false, false],
            Self::And => [false, true, false],
            Self::Or => [true, true, false],
            Self::Xor => [false, false, true],
        }
    }
}

/// Arithmetic-logic unit: inputs `a*`, `b*`, opcode `op0..op2`; output
/// `y*`. Opcodes per [`AluOp::encoding`].
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=64`.
pub fn alu(width: usize) -> Result<Netlist, EdaError> {
    check_width("alu", width)?;
    let mut n = Netlist::new(format!("alu{width}"));
    let a = bus_inputs(&mut n, "a", width);
    let b = bus_inputs(&mut n, "b", width);
    let op0 = n.add_input("op0");
    let op1 = n.add_input("op1");
    let op2 = n.add_input("op2");

    // Arithmetic arm: a + (b ^ sub) + sub, where sub = op0 & !op1 & !op2
    // ... but Add/Sub differ only in op0 when op1=op2=0, so use op0 as the
    // subtract control directly (harmless for logic ops; their result is
    // selected away).
    let b_arith: Vec<NodeId> = b
        .iter()
        .map(|&bi| n.add_gate(LogicOp::Xor, vec![bi, op0]).expect("xor"))
        .collect();
    let (arith, _) = ripple_add(&mut n, &a, &b_arith, op0);

    // Logic arms.
    let and_arm: Vec<NodeId> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| n.add_gate(LogicOp::And, vec![x, y]).expect("and"))
        .collect();
    let or_arm: Vec<NodeId> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| n.add_gate(LogicOp::Or, vec![x, y]).expect("or"))
        .collect();
    let xor_arm: Vec<NodeId> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| n.add_gate(LogicOp::Xor, vec![x, y]).expect("xor"))
        .collect();

    // Select: op2 ? xor : (op1 ? (op0 ? or : and) : arith).
    let mut outs = Vec::with_capacity(width);
    for i in 0..width {
        let and_or = n
            .add_gate(LogicOp::Mux, vec![op0, or_arm[i], and_arm[i]])
            .expect("mux");
        let low = n
            .add_gate(LogicOp::Mux, vec![op1, and_or, arith[i]])
            .expect("mux");
        let y = n
            .add_gate(LogicOp::Mux, vec![op2, xor_arm[i], low])
            .expect("mux");
        outs.push(y);
    }
    bus_outputs(&mut n, "y", &outs);
    Ok(n)
}

/// N×N crossbar with `width`-bit ports (the switch building block of
/// §III): inputs `in{p}_{b}` and per-output binary selects
/// `sel{o}_{k}`; outputs `out{o}_{b}`. Each output port selects one input
/// port through a mux tree — the "MUX based cross-point unit".
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] if `ports` is not a power of two
/// in `2..=16` or `width` is outside `1..=64`.
pub fn crossbar(ports: usize, width: usize) -> Result<Netlist, EdaError> {
    if !(2..=16).contains(&ports) || !ports.is_power_of_two() {
        return Err(EdaError::UnsupportedWidth {
            generator: "crossbar",
            width: ports,
            supported: "ports: power of two in 2..=16",
        });
    }
    check_width("crossbar", width)?;
    let sel_bits = ports.trailing_zeros() as usize;
    let mut n = Netlist::new(format!("xbar{ports}x{width}"));
    let inputs: Vec<Vec<NodeId>> = (0..ports)
        .map(|p| bus_inputs(&mut n, &format!("in{p}_"), width))
        .collect();
    let selects: Vec<Vec<NodeId>> = (0..ports)
        .map(|o| bus_inputs(&mut n, &format!("sel{o}_"), sel_bits))
        .collect();

    for (o, sel) in selects.iter().enumerate() {
        let mut outs = Vec::with_capacity(width);
        for bit in 0..width {
            // Binary mux tree over the `ports` candidates.
            let mut layer: Vec<NodeId> = inputs.iter().map(|bus| bus[bit]).collect();
            for s in sel.iter().take(sel_bits) {
                let mut next = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    let m = n
                        .add_gate(LogicOp::Mux, vec![*s, pair[1], pair[0]])
                        .expect("mux");
                    next.push(m);
                }
                layer = next;
            }
            outs.push(layer[0]);
        }
        bus_outputs(&mut n, &format!("out{o}_"), &outs);
    }
    Ok(n)
}

/// Shift register: `stages` pipeline stages of `width` bits. In PCL every
/// gate is a pipeline stage, so this is a chain of buffers; it exists in
/// the database to characterize pure pipeline cost (JJ/bit/stage).
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] for zero `stages` or invalid
/// `width`.
pub fn shift_register(stages: usize, width: usize) -> Result<Netlist, EdaError> {
    check_width("shift_register", width)?;
    if stages == 0 || stages > 1024 {
        return Err(EdaError::UnsupportedWidth {
            generator: "shift_register",
            width: stages,
            supported: "stages: 1..=1024",
        });
    }
    let mut n = Netlist::new(format!("shreg{stages}x{width}"));
    let mut bus = bus_inputs(&mut n, "d", width);
    for _ in 0..stages {
        bus = bus
            .into_iter()
            .map(|b| n.add_gate(LogicOp::Buf, vec![b]).expect("buf"))
            .collect();
    }
    bus_outputs(&mut n, "q", &bus);
    Ok(n)
}

/// Register-file read port: `regs` registers of `width` bits (register
/// contents are inputs `r{i}_{b}`), binary address `addr*`; output `q*`.
/// The storage itself is JSRAM (see `scd-mem`); this netlist is the
/// combinational read mux characterized in the design database.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] if `regs` is not a power of two
/// in `2..=32` or `width` is invalid.
pub fn register_file_read(regs: usize, width: usize) -> Result<Netlist, EdaError> {
    if !(2..=32).contains(&regs) || !regs.is_power_of_two() {
        return Err(EdaError::UnsupportedWidth {
            generator: "register_file_read",
            width: regs,
            supported: "regs: power of two in 2..=32",
        });
    }
    check_width("register_file_read", width)?;
    let addr_bits = regs.trailing_zeros() as usize;
    let mut n = Netlist::new(format!("rf{regs}x{width}"));
    let banks: Vec<Vec<NodeId>> = (0..regs)
        .map(|r| bus_inputs(&mut n, &format!("r{r}_"), width))
        .collect();
    let addr = bus_inputs(&mut n, "addr", addr_bits);
    let mut outs = Vec::with_capacity(width);
    for bit in 0..width {
        let mut layer: Vec<NodeId> = banks.iter().map(|b| b[bit]).collect();
        for a in &addr {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                let m = n
                    .add_gate(LogicOp::Mux, vec![*a, pair[1], pair[0]])
                    .expect("mux");
                next.push(m);
            }
            layer = next;
        }
        outs.push(layer[0]);
    }
    bus_outputs(&mut n, "q", &outs);
    Ok(n)
}

/// Binary decoder: `bits` address inputs, `2^bits` one-hot outputs.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=6`.
pub fn decoder(bits: usize) -> Result<Netlist, EdaError> {
    if bits == 0 || bits > 6 {
        return Err(EdaError::UnsupportedWidth {
            generator: "decoder",
            width: bits,
            supported: "1..=6",
        });
    }
    let mut n = Netlist::new(format!("dec{bits}"));
    let addr = bus_inputs(&mut n, "a", bits);
    let inv: Vec<NodeId> = addr
        .iter()
        .map(|&a| n.add_gate(LogicOp::Not, vec![a]).expect("not"))
        .collect();
    for line in 0..(1usize << bits) {
        let terms: Vec<NodeId> = (0..bits)
            .map(|k| if line >> k & 1 == 1 { addr[k] } else { inv[k] })
            .collect();
        let y = if bits == 1 {
            terms[0]
        } else {
            n.add_gate(LogicOp::And, terms).expect("and")
        };
        n.add_output(format!("y{line}"), y);
    }
    Ok(n)
}

/// Equality/less-than comparator: inputs `a*`, `b*`; outputs `eq`, `lt`
/// (unsigned).
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=64`.
pub fn comparator(width: usize) -> Result<Netlist, EdaError> {
    check_width("comparator", width)?;
    let mut n = Netlist::new(format!("cmp{width}"));
    let a = bus_inputs(&mut n, "a", width);
    let b = bus_inputs(&mut n, "b", width);
    // Per-bit equality, then MSB-down accumulation:
    //   lt = Σ_i (all higher bits equal) · (!a_i · b_i)
    let mut eq_bits = Vec::with_capacity(width);
    for i in 0..width {
        let x = n.add_gate(LogicOp::Xor, vec![a[i], b[i]])?;
        let e = n.add_gate(LogicOp::Not, vec![x])?;
        eq_bits.push(e);
    }
    let eq = if width == 1 {
        eq_bits[0]
    } else {
        n.add_gate(LogicOp::And, eq_bits.clone())?
    };
    let mut eq_prefix: Option<NodeId> = None;
    let mut lt: Option<NodeId> = None;
    for i in (0..width).rev() {
        let na = n.add_gate(LogicOp::Not, vec![a[i]])?;
        let bit_lt = n.add_gate(LogicOp::And, vec![na, b[i]])?;
        let term = match eq_prefix {
            None => bit_lt,
            Some(p) => n.add_gate(LogicOp::And, vec![p, bit_lt])?,
        };
        lt = Some(match lt {
            None => term,
            Some(l) => n.add_gate(LogicOp::Or, vec![l, term])?,
        });
        eq_prefix = Some(match eq_prefix {
            None => eq_bits[i],
            Some(p) => n.add_gate(LogicOp::And, vec![p, eq_bits[i]])?,
        });
    }
    n.add_output("eq", eq);
    n.add_output("lt", lt.expect("width ≥ 1"));
    Ok(n)
}

/// Population count: inputs `a*`; outputs `c*` (⌈log2(width+1)⌉ bits).
/// A carry-save adder tree — a good stress test for FA fusion.
///
/// # Errors
///
/// Returns [`EdaError::UnsupportedWidth`] outside `1..=64`.
pub fn popcount(width: usize) -> Result<Netlist, EdaError> {
    check_width("popcount", width)?;
    let out_bits = (usize::BITS - width.leading_zeros()) as usize;
    let mut n = Netlist::new(format!("popcount{width}"));
    let a = bus_inputs(&mut n, "a", width);
    // Column 0 holds all input bits; compress until ≤1 bit per column.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits + 1];
    columns[0] = a;
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 1 {
            break;
        }
        let cols = columns.len();
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); cols];
        for col in 0..cols {
            let bits = std::mem::take(&mut columns[col]);
            let mut it = bits.into_iter().peekable();
            while it.peek().is_some() {
                let x = it.next().unwrap();
                match (it.next(), it.next()) {
                    (Some(y), Some(z)) => {
                        let (s, c) = fa_gates(&mut n, x, y, z);
                        next[col].push(s);
                        if col + 1 < cols {
                            next[col + 1].push(c);
                        }
                    }
                    (Some(y), None) => {
                        let (s, c) = ha_gates(&mut n, x, y);
                        next[col].push(s);
                        if col + 1 < cols {
                            next[col + 1].push(c);
                        }
                    }
                    (None, _) => next[col].push(x),
                }
            }
        }
        columns = next;
    }
    let zero = n.add_const(false);
    let outs: Vec<NodeId> = (0..out_bits)
        .map(|c| columns[c].first().copied().unwrap_or(zero))
        .collect();
    bus_outputs(&mut n, "c", &outs);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a netlist with integer-valued buses. `buses` maps prefix →
    /// (value, width) in input-declaration order.
    fn eval_buses(n: &Netlist, values: &[(u64, usize)]) -> Vec<bool> {
        let mut assignment = Vec::new();
        for &(v, w) in values {
            for i in 0..w {
                assignment.push(v >> i & 1 == 1);
            }
        }
        n.eval(&assignment).unwrap()
    }

    fn bus_value(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn ripple_adder_adds() {
        let n = ripple_adder(8).unwrap();
        for (a, b, cin) in [(0u64, 0u64, 0u64), (17, 5, 0), (200, 100, 1), (255, 255, 1)] {
            let out = eval_buses(&n, &[(a, 8), (b, 8), (cin, 1)]);
            let sum = bus_value(&out[..8]) | (u64::from(out[8]) << 8);
            assert_eq!(sum, a + b + cin, "a={a} b={b} cin={cin}");
        }
    }

    #[test]
    fn kogge_stone_matches_ripple() {
        let ks = kogge_stone_adder(8).unwrap();
        let rp = ripple_adder(8).unwrap();
        for (a, b, c) in [(3u64, 9u64, 1u64), (128, 127, 0), (255, 1, 0), (90, 166, 1)] {
            let x = eval_buses(&ks, &[(a, 8), (b, 8), (c, 1)]);
            let y = eval_buses(&rp, &[(a, 8), (b, 8), (c, 1)]);
            assert_eq!(x, y, "a={a} b={b} cin={c}");
        }
    }

    #[test]
    fn kogge_stone_is_shallower() {
        let ks = kogge_stone_adder(16).unwrap();
        let rp = ripple_adder(16).unwrap();
        assert!(ks.depth() < rp.depth());
    }

    #[test]
    fn multiplier_multiplies() {
        let n = array_multiplier(8).unwrap();
        for (a, b) in [(0u64, 0u64), (1, 255), (12, 13), (255, 255), (200, 90)] {
            let out = eval_buses(&n, &[(a, 8), (b, 8)]);
            assert_eq!(bus_value(&out), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn mac_computes_mul_accumulate() {
        let n = bf16_mac().unwrap();
        let (ma, mb, ea, eb, acc) = (13u64, 7u64, 100u64, 27u64, 1_000_000u64);
        let out = eval_buses(&n, &[(ma, 8), (mb, 8), (ea, 8), (eb, 8), (acc, 32)]);
        let e = bus_value(&out[..8]);
        let r = bus_value(&out[8..40]);
        assert_eq!(e, (ea + eb) & 0xff);
        assert_eq!(r, (acc + ma * mb) & 0xffff_ffff);
    }

    #[test]
    fn alu_all_ops() {
        let n = alu(8).unwrap();
        let (a, b) = (0xa5u64, 0x3cu64);
        let cases = [
            (AluOp::Add, (a + b) & 0xff),
            (AluOp::Sub, (a.wrapping_sub(b)) & 0xff),
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
        ];
        for (op, expect) in cases {
            let enc = op.encoding();
            let mut assignment: Vec<bool> = Vec::new();
            for i in 0..8 {
                assignment.push(a >> i & 1 == 1);
            }
            for i in 0..8 {
                assignment.push(b >> i & 1 == 1);
            }
            assignment.extend(enc);
            let out = n.eval(&assignment).unwrap();
            assert_eq!(bus_value(&out), expect, "{op:?}");
        }
    }

    #[test]
    fn crossbar_routes() {
        let n = crossbar(4, 4).unwrap();
        // inputs: 4 ports × 4 bits, then 4 × 2 select bits.
        let port_vals = [0x1u64, 0x2, 0x4, 0x8];
        let sels = [2u64, 0, 3, 1];
        let mut values: Vec<(u64, usize)> = port_vals.iter().map(|&v| (v, 4)).collect();
        values.extend(sels.iter().map(|&s| (s, 2)));
        let out = eval_buses(&n, &values);
        for (o, &s) in sels.iter().enumerate() {
            let got = bus_value(&out[o * 4..o * 4 + 4]);
            assert_eq!(got, port_vals[s as usize], "output {o}");
        }
    }

    #[test]
    fn shift_register_passes_data() {
        let n = shift_register(5, 8).unwrap();
        let out = eval_buses(&n, &[(0xabu64, 8)]);
        assert_eq!(bus_value(&out), 0xab);
        assert_eq!(n.depth(), 5);
    }

    #[test]
    fn register_file_reads_addressed_register() {
        let n = register_file_read(4, 8).unwrap();
        let regs = [10u64, 20, 30, 40];
        for addr in 0..4u64 {
            let mut values: Vec<(u64, usize)> = regs.iter().map(|&r| (r, 8)).collect();
            values.push((addr, 2));
            let out = eval_buses(&n, &values);
            assert_eq!(bus_value(&out), regs[addr as usize], "addr={addr}");
        }
    }

    #[test]
    fn decoder_one_hot() {
        let n = decoder(3).unwrap();
        for a in 0..8u64 {
            let out = eval_buses(&n, &[(a, 3)]);
            for (line, &bit) in out.iter().enumerate() {
                assert_eq!(bit, line as u64 == a, "a={a} line={line}");
            }
        }
    }

    #[test]
    fn comparator_eq_lt() {
        let n = comparator(8).unwrap();
        for (a, b) in [(5u64, 5u64), (3, 9), (200, 100), (0, 0), (0, 255)] {
            let out = eval_buses(&n, &[(a, 8), (b, 8)]);
            assert_eq!(out[0], a == b, "eq a={a} b={b}");
            assert_eq!(out[1], a < b, "lt a={a} b={b}");
        }
    }

    #[test]
    fn popcount_counts() {
        let n = popcount(8).unwrap();
        for a in [0u64, 1, 0xff, 0xa5, 0x80] {
            let out = eval_buses(&n, &[(a, 8)]);
            assert_eq!(bus_value(&out), u64::from(a.count_ones()), "a={a:#x}");
        }
    }

    #[test]
    fn width_guards() {
        assert!(ripple_adder(0).is_err());
        assert!(ripple_adder(65).is_err());
        assert!(array_multiplier(33).is_err());
        assert!(crossbar(3, 8).is_err());
        assert!(decoder(7).is_err());
        assert!(shift_register(0, 8).is_err());
        assert!(register_file_read(5, 8).is_err());
    }
}
