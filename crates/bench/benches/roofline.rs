//! Criterion bench: the roofline kernel-timing engine.

use criterion::{criterion_group, criterion_main, Criterion};
use llm_workload::kernel::{Kernel, KernelClass};
use llm_workload::model::Precision;
use optimus::Roofline;
use scd_arch::Blade;
use std::hint::black_box;

fn bench_roofline(c: &mut Criterion) {
    let accel = Blade::baseline().accelerator();
    let roofline = Roofline::new(&accel);
    let gemm = Kernel::gemm(
        "qkv",
        KernelClass::Gemm,
        2048.0,
        4096.0,
        16384.0,
        Precision::Bf16,
        1.0,
    );
    let eltw = Kernel::elementwise("softmax", 1e7, 5.0, Precision::Bf16, 1.0);

    c.bench_function("roofline/time_gemm", |b| {
        b.iter(|| roofline.time_kernel(black_box(&gemm)))
    });
    c.bench_function("roofline/time_elementwise", |b| {
        b.iter(|| roofline.time_kernel(black_box(&eltw)))
    });
}

criterion_group!(benches, bench_roofline);
criterion_main!(benches);
