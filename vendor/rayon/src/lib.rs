//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! The workspace builds hermetically, so the real `rayon` cannot be
//! fetched. This crate provides genuine data parallelism — the mapped
//! closure runs on `std::thread::scope` worker threads, one contiguous
//! chunk of the input per thread — behind the familiar
//! `par_iter()/into_par_iter()/map()/collect()` surface.
//!
//! Two deliberate semantic guarantees, which real rayon does *not* make
//! but the Optimus estimation engine relies on for its serial-vs-parallel
//! equivalence tests:
//!
//! 1. **Order preservation**: `collect()` concatenates per-chunk outputs
//!    in input order, so `xs.par_iter().map(f).collect::<Vec<_>>()` is
//!    element-for-element identical to the serial map.
//! 2. **Deterministic reduction**: `sum()`, `min_by()`, `max_by()` and
//!    `reduce()` fold the *ordered* mapped results on the calling thread,
//!    left to right — only the per-item work is parallel — so floating
//!    point rounding and tie-breaking match the serial loop bit for bit.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads (mirrors `rayon`'s default of one per core).
fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extra worker threads currently alive across all `parallel_map` calls.
///
/// Real rayon multiplexes nested parallelism onto one global pool. This
/// stand-in spawns scoped threads per call instead, so without a budget a
/// parallel sweep whose body is itself parallel (an outer figure sweep
/// over `InferenceEstimator::estimate`, say) would oversubscribe the
/// machine `outer × inner`-fold. The budget caps live workers at one per
/// core: inner calls that find the budget exhausted simply run serially
/// on their caller's thread, which is both the efficient arrangement
/// (coarse-grained parallelism wins) and — results being order-folded —
/// an identical-output one.
static EXTRA_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Reserves up to `wanted` extra worker slots, returning how many were
/// granted. Pair with [`release_workers`].
fn reserve_workers(wanted: usize) -> usize {
    let budget = max_threads().saturating_sub(1);
    let mut current = EXTRA_WORKERS.load(Ordering::Relaxed);
    loop {
        let granted = wanted.min(budget.saturating_sub(current));
        if granted == 0 {
            return 0;
        }
        match EXTRA_WORKERS.compare_exchange_weak(
            current,
            current + granted,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return granted,
            Err(actual) => current = actual,
        }
    }
}

fn release_workers(granted: usize) {
    EXTRA_WORKERS.fetch_sub(granted, Ordering::Relaxed);
}

/// Releases its worker slots on drop, so a panicking mapped closure
/// cannot leak budget and silently serialize the rest of the process.
struct WorkerReservation(usize);

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        release_workers(self.0);
    }
}

/// Splits `items` into contiguous chunks and maps each chunk on its own
/// scoped thread (plus the calling thread), returning outputs in input
/// order. Worker count adapts to the global budget, degrading to a plain
/// serial map when nested under other parallel work.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let wanted = max_threads().min(items.len()).saturating_sub(1);
    let reservation = WorkerReservation(reserve_workers(wanted));
    parallel_map_with(items, f, reservation.0 + 1)
}

/// [`parallel_map`] with an explicit worker count, so tests can exercise
/// the chunked multi-thread path even on single-core machines.
fn parallel_map_with<T, R, F>(items: Vec<T>, f: &F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = workers.min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Distribute the remainder one item at a time so chunk sizes differ by
    // at most one.
    let base = len / threads;
    let rem = len % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for i in 0..threads {
        let take = base + usize::from(i < rem);
        chunks.push(it.by_ref().take(take).collect());
    }

    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mapped) => out.push(mapped),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// Everything a caller needs in scope: the conversion traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Types convertible into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<'a, T: Sync, const N: usize> IntoParallelIterator for &'a [T; N] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par_iter!(u32, u64, usize);

/// `par_iter()` sugar over `&self` collections (mirror of rayon's trait).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
    C: 'a,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// Operations shared by [`ParIter`] and [`ParMap`].
pub trait ParallelIterator: Sized {
    /// Element type produced by the iterator.
    type Item: Send;

    /// Runs the parallel pipeline, returning outputs in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Collects into `C`, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Left-to-right sum over the ordered results (bit-identical to serial).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Left-to-right fold over the ordered results with `identity` as the
    /// starting accumulator (bit-identical to a serial fold).
    fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
    where
        Id: Fn() -> Self::Item,
        Op: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Minimum by comparator with serial tie-breaking (first minimum wins,
    /// exactly like `Iterator::min_by`).
    fn min_by<F>(self, compare: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering,
    {
        self.run().into_iter().min_by(compare)
    }

    /// Maximum by comparator with serial tie-breaking (last maximum wins,
    /// exactly like `Iterator::max_by`).
    fn max_by<F>(self, compare: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering,
    {
        self.run().into_iter().max_by(compare)
    }
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _r: std::marker::PhantomData,
        }
    }

    /// Maps every item to an iterator and flattens, preserving order.
    pub fn flat_map<R, I, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        I: IntoIterator<Item = R>,
        I::IntoIter: Send,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map(self.items, &|x| f(x).into_iter().collect::<Vec<R>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A pending parallel map (`items` each fed through `f`).
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _r: std::marker::PhantomData<R>,
}

impl<T, R, F> ParallelIterator for ParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_map(self.items, &self.f)
    }
}

/// Runs `a` and `b` concurrently and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::join;
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * x).collect();
        let par: Vec<u64> = xs.par_iter().map(|x| *x * *x).collect();
        assert_eq!(serial, par);
    }

    #[test]
    fn sum_is_bit_identical_to_serial() {
        let xs: Vec<f64> = (1..5_000).map(|i| 1.0 / f64::from(i)).collect();
        let serial: f64 = xs.iter().map(|x| x.sqrt()).sum();
        let par: f64 = xs.par_iter().map(|x| x.sqrt()).sum();
        assert_eq!(serial.to_bits(), par.to_bits());
    }

    #[test]
    fn min_by_matches_serial_tie_breaking() {
        let xs = vec![(3, 'a'), (1, 'b'), (1, 'c'), (2, 'd')];
        let serial = xs.iter().min_by(|a, b| a.0.cmp(&b.0));
        let par = xs.par_iter().min_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(serial, par);
    }

    #[test]
    fn ranges_and_flat_map() {
        let par: Vec<usize> = (0usize..100)
            .into_par_iter()
            .flat_map(|i| vec![i, i])
            .collect();
        let serial: Vec<usize> = (0usize..100).flat_map(|i| vec![i, i]).collect();
        assert_eq!(par, serial);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_path_preserves_order_for_every_worker_count() {
        // Exercise the scoped-thread path explicitly: on a single-core CI
        // runner max_threads() is 1 and the public API degrades to the
        // serial fast path, which would leave the chunking logic untested.
        let xs: Vec<u64> = (0..1003).collect();
        let expected: Vec<u64> = xs.iter().map(|x| x * 3 + 1).collect();
        for workers in [2, 3, 4, 7, 16, 2000] {
            let got = super::parallel_map_with(xs.clone(), &|x| x * 3 + 1, workers);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn nested_parallelism_is_correct_and_budgeted() {
        // An outer parallel sweep whose body is itself parallel must
        // produce exactly the serial result; the inner calls fall back to
        // the caller's thread once the worker budget is spent.
        let expected: Vec<Vec<u64>> = (0..4u64)
            .map(|i| (0..100u64).map(|j| i * 1000 + j * j).collect())
            .collect();
        let got: Vec<Vec<u64>> = (0..4u64)
            .into_par_iter()
            .map(|i| {
                (0..100u64)
                    .into_par_iter()
                    .map(|j| i * 1000 + j * j)
                    .collect()
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_budget_is_returned_after_use() {
        // Reserving after a completed parallel_map must see a budget no
        // smaller than a fresh reservation saw (other tests may hold
        // permits concurrently, so only monotone consistency is checked).
        let budget = super::max_threads().saturating_sub(1);
        let first = super::reserve_workers(budget);
        super::release_workers(first);
        let xs: Vec<u64> = (0..64).collect();
        let _: Vec<u64> = xs.into_par_iter().map(|x| x + 1).collect();
        let second = super::reserve_workers(budget);
        super::release_workers(second);
        assert!(second <= budget);
    }

    #[test]
    fn chunked_path_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            super::parallel_map_with((0..8u32).collect(), &|x| assert_ne!(x, 5), 4)
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
