//! The [`Strategy`] trait and the primitive strategies (ranges, tuples,
//! mapped strategies).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` (stand-in for
/// `proptest::strategy::Strategy`; sampling only, no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes samples through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }
}

/// A strategy transformed by a mapping function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start + draw as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// A strategy that always yields clones of one value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
