//! CI gate for the event-driven simulation core's performance: replays
//! the 10k-request diurnal point through the single-blade event core,
//! the 4-blade central cluster, the 2P+2D disaggregated topology and
//! the cache-coordinated cluster (shared-prefix point),
//! failing (exit 1) if any measured simulator throughput falls below
//! 70 % of the committed `BENCH_serving_core.json` baseline's *latest*
//! trajectory entry on every attempt (a below-floor scenario is granted
//! [`SMOKE_RETRIES`] fresh measurements before it counts as a
//! regression). Baselines predating a gated scenario (e.g. legacy
//! single-blade-only snapshots) skip that scenario's gate with a
//! notice — the next `--bench-json` refresh starts gating it.
//!
//! The committed baseline is read from the path given as the first
//! argument (default `BENCH_serving_core.json`, i.e. repo root when run
//! via `cargo run`). Grow it with
//! `cargo run --release -p scd-bench --bin serving_capacity -- --bench-json`,
//! which appends a snapshot keyed to the current git revision.

use scd_bench::core_bench::{
    measure_scenario, try_parse_trajectory_json, CoreScenario, SMOKE_FLOOR, SMOKE_REQUESTS,
};

/// The scenarios the smoke gate measures, each against its own
/// baseline row.
const GATED: [CoreScenario; 4] = [
    CoreScenario::Event,
    CoreScenario::ClusterEvent,
    CoreScenario::DisaggEvent,
    CoreScenario::ClusterCache,
];

/// Extra measurements granted to a scenario that lands below its floor.
/// Shared CI machines hand out ~2x-slow scheduling windows often enough
/// that one best-of-passes sample against a 70 % floor is flaky; a real
/// regression fails every retry, a noisy window does not.
const SMOKE_RETRIES: u32 = 2;

fn main() -> Result<(), optimus::OptimusError> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving_core.json".to_owned());
    let baseline_json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("bench_smoke: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let trajectory = try_parse_trajectory_json(&baseline_json).unwrap_or_else(|e| {
        eprintln!("bench_smoke: malformed baseline {path}: {e}");
        std::process::exit(1);
    });
    let latest = trajectory.last().expect("parse yields at least one entry");

    let mut failed = false;
    for scenario in GATED {
        let label = scenario.label();
        let Some(baseline) = latest
            .rows
            .iter()
            .find(|r| r.scenario == label && r.requests == SMOKE_REQUESTS)
        else {
            println!(
                "bench_smoke: baseline {} predates the {label}/{SMOKE_REQUESTS} row; \
                 skipping that gate (refresh with --bench-json to arm it)",
                latest.git_rev
            );
            continue;
        };
        let floor = SMOKE_FLOOR * baseline.req_per_s;
        let mut measured = measure_scenario(scenario, SMOKE_REQUESTS)?;
        let mut retries = 0;
        while measured.req_per_s < floor && retries < SMOKE_RETRIES {
            retries += 1;
            println!(
                "bench_smoke: {label} at {:.0} req/s is below floor {floor:.0}; \
                 retrying ({retries}/{SMOKE_RETRIES}) in case the window was noisy",
                measured.req_per_s
            );
            measured = measure_scenario(scenario, SMOKE_REQUESTS)?;
        }
        println!(
            "bench_smoke: {label}, {SMOKE_REQUESTS} requests: {:.0} req/s \
             (baseline {:.0} at {}, floor {floor:.0}; {} snapshot(s) on the trajectory)",
            measured.req_per_s,
            baseline.req_per_s,
            latest.git_rev,
            trajectory.len()
        );
        // Self-profile phase counters ride along informationally — the
        // gate stays on req_per_s alone, and rows without them (legacy
        // baselines, profiler compiled out) are equally fine.
        if let Some(p) = &measured.profile {
            println!(
                "bench_smoke: {label} profile: {} heap ops, {} stretch plans \
                 ({:.1} ms), {} leapfrogs ({:.1} ms), {} admission rounds \
                 ({:.1} ms), {} routing calls ({:.1} ms)",
                p.heap_ops,
                p.stretch_plans,
                p.stretch_plan_ms,
                p.leapfrogs,
                p.leapfrog_ms,
                p.admission_rounds,
                p.admission_ms,
                p.routing_calls,
                p.routing_ms
            );
        }
        if measured.req_per_s < floor {
            eprintln!(
                "bench_smoke: FAIL — {label} at {:.0} req/s is below {:.0}% of the \
                 committed baseline",
                measured.req_per_s,
                SMOKE_FLOOR * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_smoke: PASS");
    Ok(())
}
