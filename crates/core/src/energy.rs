//! Energy projection — the paper's motivating concern (§I: GPT-3 training
//! at ~1300 MWh; "sub-attojoule" SCD switching, 100× lower on-chip power,
//! 10000× cheaper communication).
//!
//! Device-level energy comes from `scd-tech` (JJ switching) and the
//! per-level `energy_per_byte` figures in the memory hierarchy; cryogenic
//! systems additionally pay the cooling overhead of their temperature
//! stage for wall-plug comparisons.

use crate::error::OptimusError;
use crate::roofline::{Placement, Roofline};
use llm_workload::taskgraph::TaskGraph;
use scd_arch::Accelerator;
use scd_tech::units::TemperatureDomain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-technology energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules per floating-point operation in the datapath.
    pub joules_per_flop: f64,
    /// Joules per byte of inter-accelerator communication.
    pub comm_joules_per_byte: f64,
    /// Temperature stage of the compute die (sets cooling overhead).
    pub compute_stage: TemperatureDomain,
}

impl EnergyModel {
    /// The SCD datapath: an 8 kJJ MAC switching half its junctions per
    /// 2-op cycle at ~0.07 aJ each → ~70 aJ/FLOP; NbTiN links at
    /// 5 fJ/bit; 4 K cooling (≈400× wall-plug overhead).
    #[must_use]
    pub fn scd() -> Self {
        Self {
            joules_per_flop: 70.0e-18,
            comm_joules_per_byte: 8.0 * 5.0e-15,
            compute_stage: TemperatureDomain::Cryo4K,
        }
    }

    /// An H100-class GPU: ~700 W at ~0.5 PFLOP/s sustained dense bf16 →
    /// ~1.4 pJ/FLOP (datapath + on-die movement); NVLink-class links at
    /// ~10 pJ/bit; room-temperature operation.
    #[must_use]
    pub fn h100() -> Self {
        Self {
            joules_per_flop: 1.4e-12,
            comm_joules_per_byte: 8.0 * 10.0e-12,
            compute_stage: TemperatureDomain::RoomTemperature,
        }
    }
}

/// Energy breakdown for a task graph execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Datapath compute energy (J).
    pub compute_j: f64,
    /// Memory-traffic energy across the hierarchy (J).
    pub memory_j: f64,
    /// Inter-accelerator communication energy (J).
    pub comm_j: f64,
    /// Device-level total (J).
    pub total_j: f64,
    /// Wall-plug total including cooling overhead (J).
    pub wall_plug_j: f64,
}

impl EnergyReport {
    /// Device-level total in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.total_j
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} J device ({:.3} compute + {:.3} memory + {:.3} comm), {:.3} J wall-plug",
            self.total_j, self.compute_j, self.memory_j, self.comm_j, self.wall_plug_j
        )
    }
}

/// Estimates the per-unit energy of executing `graph` once on `accel`.
///
/// Memory traffic is charged at the hierarchy level the roofline places
/// each stream in; communication at the fabric's per-byte cost; the
/// wall-plug figure multiplies everything dissipated at the compute stage
/// by its cooling overhead.
///
/// # Errors
///
/// Returns [`OptimusError`] if the accelerator is invalid.
pub fn estimate_energy(
    accel: &Accelerator,
    graph: &TaskGraph,
    model: &EnergyModel,
    placement: Placement,
) -> Result<EnergyReport, OptimusError> {
    accel.validate()?;
    let roofline = Roofline::new(accel).with_placement(placement);
    let mut compute_j = 0.0;
    let mut memory_j = 0.0;
    for kernel in &graph.kernels {
        compute_j += kernel.flops * kernel.invocations * model.joules_per_flop;
        // Weight stream at the weight level, activations at their level.
        let weight_level = accel
            .hierarchy
            .level(placement.weights)
            .unwrap_or_else(|| accel.hierarchy.outermost());
        let act_kind = if kernel.kv_stream {
            placement.kv.unwrap_or(placement.weights)
        } else {
            roofline.activation_level(kernel)
        };
        let act_level = accel
            .hierarchy
            .level(act_kind)
            .unwrap_or_else(|| accel.hierarchy.outermost());
        memory_j += (weight_level.transfer_energy(kernel.weight_bytes).joules()
            + act_level.transfer_energy(kernel.activation_bytes).joules())
            * kernel.invocations;
    }
    let comm_j: f64 = graph
        .comms
        .iter()
        .map(|c| c.bytes * c.invocations * model.comm_joules_per_byte)
        .sum();
    let total_j = compute_j + memory_j + comm_j;
    // Cooling: on-chip dissipation pays the compute stage's overhead; in
    // the SCD architecture the main memory sits at 77 K (Fig. 2/3), so
    // its traffic energy pays only the 77 K overhead.
    let dram_stage = if model.compute_stage == TemperatureDomain::Cryo4K {
        TemperatureDomain::Cryo77K
    } else {
        model.compute_stage
    };
    let dram_level = accel.hierarchy.outermost();
    let mut dram_j = 0.0;
    for kernel in &graph.kernels {
        let act_kind = if kernel.kv_stream {
            placement.kv.unwrap_or(placement.weights)
        } else {
            roofline.activation_level(kernel)
        };
        if placement.weights == dram_level.kind {
            dram_j += dram_level.transfer_energy(kernel.weight_bytes).joules() * kernel.invocations;
        }
        if act_kind == dram_level.kind {
            dram_j +=
                dram_level.transfer_energy(kernel.activation_bytes).joules() * kernel.invocations;
        }
    }
    let on_chip_j = total_j - dram_j;
    let wall_plug_j =
        on_chip_j * model.compute_stage.cooling_overhead() + dram_j * dram_stage.cooling_overhead();
    Ok(EnergyReport {
        compute_j,
        memory_j,
        comm_j,
        total_j,
        wall_plug_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::model::{ModelZoo, Precision};
    use llm_workload::parallelism::Parallelism;
    use llm_workload::taskgraph::training_step;
    use scd_arch::{Blade, GpuSystem};
    use scd_tech::units::Bandwidth;

    fn graph() -> TaskGraph {
        training_step(
            &ModelZoo::gpt3_18b(),
            &Parallelism::training_baseline(),
            16,
            2048,
            Precision::Bf16,
        )
        .expect("graph")
    }

    #[test]
    fn scd_device_energy_far_below_gpu() {
        let g = graph();
        let spu = Blade::baseline()
            .accelerator()
            .with_dram_bandwidth(Bandwidth::from_tbps(16.0));
        let gpu = GpuSystem::h100_cluster(64).accelerator().clone();
        let e_scd = estimate_energy(&spu, &g, &EnergyModel::scd(), Placement::dram()).unwrap();
        let e_gpu = estimate_energy(&gpu, &g, &EnergyModel::h100(), Placement::dram()).unwrap();
        let ratio = e_gpu.total_j / e_scd.total_j;
        assert!(ratio > 20.0, "device-level advantage, got {ratio:.1}x");
    }

    #[test]
    fn cooling_overhead_narrows_but_does_not_erase_the_gap() {
        let g = graph();
        let spu = Blade::baseline()
            .accelerator()
            .with_dram_bandwidth(Bandwidth::from_tbps(16.0));
        let gpu = GpuSystem::h100_cluster(64).accelerator().clone();
        let e_scd = estimate_energy(&spu, &g, &EnergyModel::scd(), Placement::dram()).unwrap();
        let e_gpu = estimate_energy(&gpu, &g, &EnergyModel::h100(), Placement::dram()).unwrap();
        // On-chip joules pay 400×; cryo-DRAM traffic only 10×, so the
        // aggregate multiplier sits in between.
        let multiplier = e_scd.wall_plug_j / e_scd.total_j;
        assert!((10.0..=400.0).contains(&multiplier), "got {multiplier:.1}");
        let wall_ratio = e_gpu.wall_plug_j / e_scd.wall_plug_j;
        assert!(
            wall_ratio > 1.0,
            "SCD should stay ahead even at wall-plug, got {wall_ratio:.2}x"
        );
    }

    #[test]
    fn breakdown_sums() {
        let g = graph();
        let spu = Blade::baseline().accelerator();
        let e = estimate_energy(&spu, &g, &EnergyModel::scd(), Placement::dram()).unwrap();
        assert!((e.compute_j + e.memory_j + e.comm_j - e.total_j).abs() < 1e-12 * e.total_j);
        assert!(e.to_string().contains("wall-plug"));
    }
}
