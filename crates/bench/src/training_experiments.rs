//! Experiments F5 and F6: LLM-training projections.

use llm_workload::model::ModelZoo;
use llm_workload::parallelism::Parallelism;
use optimus::{OptimusError, SpeedupStudy};
use scd_tech::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 5 bandwidth sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// DRAM bandwidth per SPU (TB/s).
    pub bw_tbps: f64,
    /// Achieved PFLOP/s per SPU.
    pub pflops_per_spu: f64,
    /// Forward-GEMM time per layer spent memory-bound (ms).
    pub fw_gemm_mem_ms: f64,
    /// Forward-GEMM time per layer spent compute-bound (ms).
    pub fw_gemm_comp_ms: f64,
}

/// Runs the Fig. 5 sweep: GPT3-76B training, B=128, TP=8/PP=8/DP=1,
/// DRAM bandwidth per SPU swept 0.5–64 TB/s.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig5_sweep() -> Result<Vec<Fig5Point>, OptimusError> {
    let model = ModelZoo::gpt3_76b();
    let par = Parallelism::new(8, 8, 1)?;
    let mut out = Vec::new();
    for bw in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let study = SpeedupStudy::paper_baseline().with_dram_bandwidth(Bandwidth::from_tbps(bw));
        let r = study.scd_training().estimate(&model, &par, 128)?;
        out.push(Fig5Point {
            bw_tbps: bw,
            pflops_per_spu: r.pflops_per_unit(),
            fw_gemm_mem_ms: r.fw_gemm_mem_bound_per_layer_s * 1e3,
            fw_gemm_comp_ms: r.fw_gemm_comp_bound_per_layer_s * 1e3,
        });
    }
    Ok(out)
}

/// Renders the Fig. 5 series.
#[must_use]
pub fn render_fig5(points: &[Fig5Point]) -> String {
    let mut out = String::from(
        "Fig. 5: GPT3-76B training throughput vs DRAM bandwidth per SPU\n\
         (B=128, bf16, TP=8, PP=8, DP=1)\n\n\
         BW(TB/s)  PFLOP/s/SPU   FW-GEMM/layer mem-bound(ms)  comp-bound(ms)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>8.1}{:>13.3}{:>30.3}{:>16.3}\n",
            p.bw_tbps, p.pflops_per_spu, p.fw_gemm_mem_ms, p.fw_gemm_comp_ms
        ));
    }
    out
}

/// One bar of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Model name.
    pub model: String,
    /// "GPU" or "SPU".
    pub system: &'static str,
    /// Compute time per batch (s).
    pub comp_s: f64,
    /// Communication time per batch (s).
    pub comm_s: f64,
    /// Others (bubble + update) time (s).
    pub others_s: f64,
    /// Total time per batch (s).
    pub total_s: f64,
    /// Achieved PFLOP/s per processing unit (the inset).
    pub pflops_per_unit: f64,
}

/// Runs the Fig. 6 comparison: three GPT models, B=64, TP=8/PP=8/DP=1,
/// 16 TB/s per SPU vs 64 H100s.
///
/// # Errors
///
/// Propagates estimation failures.
pub fn fig6_rows() -> Result<Vec<Fig6Row>, OptimusError> {
    let par = Parallelism::new(8, 8, 1)?;
    let study = SpeedupStudy::paper_baseline();
    let mut rows = Vec::new();
    for model in [
        ModelZoo::gpt3_18b(),
        ModelZoo::gpt3_76b(),
        ModelZoo::gpt3_175b(),
    ] {
        let c = study.training(&model, &par, 64)?;
        rows.push(Fig6Row {
            model: model.name.clone(),
            system: "GPU",
            comp_s: c.gpu.compute_s,
            comm_s: c.gpu.comm_s,
            others_s: c.gpu.others_s(),
            total_s: c.gpu.total_s,
            pflops_per_unit: c.gpu.pflops_per_unit(),
        });
        rows.push(Fig6Row {
            model: model.name.clone(),
            system: "SPU",
            comp_s: c.scd.compute_s,
            comm_s: c.scd.comm_s,
            others_s: c.scd.others_s(),
            total_s: c.scd.total_s,
            pflops_per_unit: c.scd.pflops_per_unit(),
        });
    }
    Ok(rows)
}

/// Renders Fig. 6 with per-model speed-ups.
#[must_use]
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::from(
        "Fig. 6: training time per batch, GPU (64×H100) vs SPU (64, 16 TB/s)\n\
         (B=64, bf16, TP=8, PP=8, DP=1)\n\n\
         model        sys   comp(s)   comm(s)  others(s)  total(s)  PFLOP/s/PU\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13}{:<5}{:>9.3}{:>10.3}{:>11.3}{:>10.3}{:>12.3}\n",
            r.model, r.system, r.comp_s, r.comm_s, r.others_s, r.total_s, r.pflops_per_unit
        ));
    }
    out.push('\n');
    for pair in rows.chunks(2) {
        if let [gpu, spu] = pair {
            out.push_str(&format!(
                "{:<13} speed-up: {:.2}x\n",
                gpu.model,
                gpu.total_s / spu.total_s
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_monotone_and_saturating() {
        let pts = fig5_sweep().unwrap();
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(w[1].pflops_per_spu >= w[0].pflops_per_spu - 1e-9);
        }
        // Crossover: memory-bound share shrinks with bandwidth.
        assert!(pts[0].fw_gemm_mem_ms > pts[0].fw_gemm_comp_ms);
        let last = pts.last().unwrap();
        assert!(last.fw_gemm_comp_ms > last.fw_gemm_mem_ms);
        let text = render_fig5(&pts);
        assert!(text.contains("PFLOP/s/SPU"));
    }

    #[test]
    fn fig6_speedups_in_paper_band() {
        let rows = fig6_rows().unwrap();
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let speedup = pair[0].total_s / pair[1].total_s;
            assert!(
                (2.5..6.0).contains(&speedup),
                "{}: {speedup:.2}",
                pair[0].model
            );
        }
        let text = render_fig6(&rows);
        assert!(text.contains("speed-up"));
    }
}
