//! Mapping search: "for a given system architecture and workload, we
//! assess the most optimal mapping, reducing communication overhead" (§V).
//!
//! Exhaustively enumerates the (TP, PP, DP) factorizations of the unit
//! count that are compatible with the model and picks the one minimizing
//! estimated step time. Candidates are estimated in parallel (one rayon
//! task per factorization); the argmin itself folds the ordered results
//! on the calling thread, so the outcome is bit-identical to the serial
//! reference ([`MappingSearch::best_training_serial`]).

use crate::error::OptimusError;
use crate::training::{TrainingEstimator, TrainingReport};
use llm_workload::model::TransformerConfig;
use llm_workload::parallelism::Parallelism;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One evaluated mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingChoice {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Estimated step time (s).
    pub step_time_s: f64,
}

/// Exhaustive mapping search over a fixed unit count.
#[derive(Debug, Clone)]
pub struct MappingSearch {
    units: u32,
}

impl MappingSearch {
    /// Creates a search over `units` processing units.
    #[must_use]
    pub fn new(units: u32) -> Self {
        Self { units }
    }

    /// All valid (tp, pp, dp) factorizations for `model`.
    #[must_use]
    pub fn candidates(&self, model: &TransformerConfig, global_batch: u32) -> Vec<Parallelism> {
        let mut out = Vec::new();
        let n = self.units;
        for tp in 1..=n {
            if !n.is_multiple_of(tp) {
                continue;
            }
            for pp in 1..=(n / tp) {
                if !(n / tp).is_multiple_of(pp) {
                    continue;
                }
                let dp = n / tp / pp;
                let Ok(par) = Parallelism::new(tp, pp, dp) else {
                    continue;
                };
                if par.check_model(model).is_err() {
                    continue;
                }
                if !global_batch.is_multiple_of(dp) {
                    continue;
                }
                out.push(par);
            }
        }
        out
    }

    /// Evaluates one candidate plan into a (choice, report) pair, or
    /// `None` if the estimator rejects it.
    fn evaluate(
        estimator: &TrainingEstimator,
        model: &TransformerConfig,
        global_batch: u32,
        par: &Parallelism,
    ) -> Option<(MappingChoice, TrainingReport)> {
        let report = estimator.estimate(model, par, global_batch).ok()?;
        let choice = MappingChoice {
            tp: par.tp(),
            pp: par.pp(),
            dp: par.dp(),
            step_time_s: report.total_s,
        };
        Some((choice, report))
    }

    /// Folds evaluated candidates, in candidate-enumeration order, into
    /// the fastest one. Ties keep the earliest candidate, exactly like
    /// the original serial loop.
    fn select(
        &self,
        evaluated: impl Iterator<Item = Option<(MappingChoice, TrainingReport)>>,
        model: &TransformerConfig,
    ) -> Result<(MappingChoice, TrainingReport), OptimusError> {
        let mut best: Option<(MappingChoice, TrainingReport)> = None;
        for (choice, report) in evaluated.flatten() {
            match &best {
                Some((b, _)) if b.step_time_s <= choice.step_time_s => {}
                _ => best = Some((choice, report)),
            }
        }
        best.ok_or_else(|| OptimusError::Mapping {
            reason: format!(
                "no valid (tp,pp,dp) factorization of {} units for {}",
                self.units, model.name
            ),
        })
    }

    /// Finds the fastest training mapping, estimating every candidate
    /// factorization on a separate rayon task.
    ///
    /// Bit-identical to [`Self::best_training_serial`]: only the per-candidate
    /// estimation runs concurrently; the argmin folds the ordered results
    /// on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Mapping`] if no candidate is valid.
    pub fn best_training(
        &self,
        estimator: &TrainingEstimator,
        model: &TransformerConfig,
        global_batch: u32,
    ) -> Result<(MappingChoice, TrainingReport), OptimusError> {
        let evaluated: Vec<Option<(MappingChoice, TrainingReport)>> = self
            .candidates(model, global_batch)
            .into_par_iter()
            .map(|par| Self::evaluate(estimator, model, global_batch, &par))
            .collect();
        self.select(evaluated.into_iter(), model)
    }

    /// Serial reference implementation of [`Self::best_training`], kept as
    /// the ground truth for the rayon-equivalence test in CI.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Mapping`] if no candidate is valid.
    pub fn best_training_serial(
        &self,
        estimator: &TrainingEstimator,
        model: &TransformerConfig,
        global_batch: u32,
    ) -> Result<(MappingChoice, TrainingReport), OptimusError> {
        let evaluated = self
            .candidates(model, global_batch)
            .into_iter()
            .map(|par| Self::evaluate(estimator, model, global_batch, &par));
        self.select(evaluated, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::model::ModelZoo;
    use scd_arch::Blade;
    use scd_tech::units::Bandwidth;

    fn estimator(bw: f64) -> TrainingEstimator {
        let blade = Blade::baseline();
        TrainingEstimator::new(
            blade
                .accelerator()
                .with_dram_bandwidth(Bandwidth::from_tbps(bw)),
            blade.interconnect(),
        )
    }

    #[test]
    fn candidates_respect_model_constraints() {
        let search = MappingSearch::new(64);
        let model = ModelZoo::gpt3_76b(); // 80 heads
        for par in search.candidates(&model, 64) {
            assert_eq!(par.units(), 64);
            assert_eq!(model.heads % par.tp(), 0);
        }
        // tp=64 does not divide 80 heads, so it must be absent.
        assert!(search.candidates(&model, 64).iter().all(|p| p.tp() != 64));
    }

    #[test]
    fn best_mapping_beats_or_matches_naive() {
        let search = MappingSearch::new(64);
        let model = ModelZoo::gpt3_76b();
        let est = estimator(16.0);
        let (best, _) = search.best_training(&est, &model, 64).unwrap();
        let naive = est
            .estimate(&model, &Parallelism::new(8, 8, 1).unwrap(), 64)
            .unwrap();
        assert!(best.step_time_s <= naive.total_s * 1.0001);
    }

    #[test]
    fn impossible_search_errors() {
        let search = MappingSearch::new(7); // prime, larger than any divisor set
        let mut model = ModelZoo::gpt3_76b();
        model.heads = 64; // 7 divides neither heads nor layers usefully
        model.ffn_hidden = 4096;
        // batch 3 not divisible by dp=7 either → only dp=1,tp=1,pp=7 path
        // remains; make layers < 7 to kill it.
        model.layers = 4;
        let est = estimator(16.0);
        assert!(search.best_training(&est, &model, 3).is_err());
    }
}
