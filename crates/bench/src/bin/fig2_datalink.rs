//! Experiment F2b: the 4K↔77K datalink specification.
fn main() {
    print!("{}", scd_bench::spec_tables::fig2_datalink());
}
