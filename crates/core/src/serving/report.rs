//! Replay outcomes: latency percentiles, per-request SLO classes, the
//! [`ServingReport`] carried by every engine/cluster replay, and the
//! SLO-frontier point.

use crate::error::OptimusError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A service-level-objective class: the TTFT/TPOT targets a subset of the
/// request population is held to, plus the weight its goodput carries in
/// the blended [`ServingReport::weighted_goodput_tok_s`]. Requests name
/// their class by index ([`RequestSpec::class`](super::RequestSpec)); a
/// scenario that never mentions classes runs one default class holding
/// the engine's global SLO pair, which reproduces the PR 3 goodput
/// accounting bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloClass {
    /// Class name for reports (e.g. "interactive", "batch").
    pub name: String,
    /// Time-to-first-token target (s).
    pub ttft_slo_s: f64,
    /// Time-per-output-token target (s).
    pub tpot_slo_s: f64,
    /// Relative weight of this class's goodput in the blended figure.
    pub weight: f64,
}

impl SloClass {
    /// A class with unit weight.
    #[must_use]
    pub fn new(name: impl Into<String>, ttft_slo_s: f64, tpot_slo_s: f64) -> Self {
        Self {
            name: name.into(),
            ttft_slo_s,
            tpot_slo_s,
            weight: 1.0,
        }
    }

    /// Overrides the goodput weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// A latency-sensitive chat-style class: tight first-token and
    /// inter-token targets, double weight.
    #[must_use]
    pub fn interactive() -> Self {
        Self::new("interactive", 2.0, 0.05).with_weight(2.0)
    }

    /// A throughput-oriented offline class: loose targets, unit weight.
    #[must_use]
    pub fn batch() -> Self {
        Self::new("batch", 30.0, 0.5)
    }

    pub(crate) fn validate(&self) -> Result<(), OptimusError> {
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(self.ttft_slo_s) || !positive(self.tpot_slo_s) || !positive(self.weight) {
            return Err(OptimusError::Serving {
                reason: format!(
                    "SLO class {:?} needs positive finite targets and weight \
                     (ttft {}, tpot {}, weight {})",
                    self.name, self.ttft_slo_s, self.tpot_slo_s, self.weight
                ),
            });
        }
        Ok(())
    }
}

/// Per-class slice of a [`ServingReport`]: the class's own goodput,
/// attainment and tails over the requests that named it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloClassReport {
    /// Class name (from [`SloClass::name`]).
    pub name: String,
    /// Goodput weight (from [`SloClass::weight`]).
    pub weight: f64,
    /// Requests in this class (shed ones included).
    pub requests: u32,
    /// Requests of this class dropped by the admission-control gate
    /// (never run; 0 without a control plane, and always 0 for the
    /// strict class).
    pub shed: u64,
    /// Useful tokens per second over the replay makespan from this
    /// class's requests that met the class targets.
    pub goodput_tok_s: f64,
    /// Fraction of this class's requests meeting both targets (1.0 for an
    /// empty class). Shed requests count as misses — shedding trades
    /// best-effort attainment for strict-class attainment, and the
    /// accounting shows the price.
    pub slo_attainment: f64,
    /// Prefill tokens this class's requests skipped via prefix-cache hits
    /// (0 with prefix caching off).
    pub prefix_tokens_saved: u64,
    /// Time-to-first-token percentiles of this class (s).
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles of this class (s).
    pub tpot: Percentiles,
}

/// Nearest-rank percentiles of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Exact nearest-rank percentiles of `values` (sorted in place;
    /// all-zero for an empty slice). These are the authoritative
    /// end-of-run figures the streaming sketches in
    /// [`telemetry`](super::telemetry) are validated against.
    #[must_use]
    pub fn of(values: &mut [f64]) -> Self {
        values.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            if values.is_empty() {
                return 0.0;
            }
            let rank = (q * values.len() as f64).ceil() as usize;
            values[rank.clamp(1, values.len()) - 1]
        };
        Self {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
        }
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests in the trace.
    pub requests: u32,
    /// Requests that ran to completion. Equals `requests` minus
    /// [`Self::shed_requests`] — the simulator drains its queue, and
    /// only the admission-control gate (when configured) drops work.
    pub completed: u32,
    /// Requests dropped by the admission-control load-shedding gate
    /// (never admitted, never completed; 0 without a control plane).
    pub shed_requests: u64,
    /// Preemptions: a running request was evicted because the grown KV
    /// cache no longer fit, and restarted later (recompute-style).
    pub evictions: u32,
    /// Generated tokens discarded by evictions (recomputed later).
    pub wasted_tokens: u64,
    /// Time from first arrival to last completion (s).
    pub makespan_s: f64,
    /// Useful generated tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// Throughput counting only requests that met both SLOs.
    pub goodput_tok_s: f64,
    /// Fraction of requests meeting both the TTFT and TPOT SLOs.
    pub slo_attainment: f64,
    /// Decode-time-weighted mean batch occupancy.
    pub mean_batch: f64,
    /// Total decode time across all iterations (s).
    pub decode_time_s: f64,
    /// Number of decode iterations.
    pub decode_iterations: u64,
    /// Longest single engine iteration (s): the worst stall a running
    /// decode experiences from a co-scheduled prefill — the quantity
    /// chunked prefill exists to bound.
    pub max_step_s: f64,
    /// Peak KV-cache occupancy observed during replay (bytes; block
    /// footprint under the paged layout, token footprint when contiguous).
    pub kv_peak_bytes: f64,
    /// Peak internal fragmentation under the paged layout (bytes reserved
    /// in partially-filled blocks); 0 for the contiguous layout.
    pub kv_fragmentation_peak_bytes: f64,
    /// Prefix-cache lookups that found at least one cached block
    /// (admissions of prefix-tagged requests; 0 with caching off).
    pub prefix_hits: u64,
    /// Prefix-cache lookups that found nothing cached.
    pub prefix_misses: u64,
    /// Prefill tokens skipped because their KV was already cached
    /// (summed over re-admissions after eviction too).
    pub prefix_tokens_saved: u64,
    /// Copy-on-write block copies: a sequence appended past a *shared*
    /// partially-filled tail block and had to take a private copy first.
    pub prefix_cow_copies: u64,
    /// Shared blocks reclaimed by LRU eviction to make room.
    pub prefix_cache_evictions: u64,
    /// Peak capacity pinned by resident shared prefix blocks (bytes,
    /// block-granular, worst single blade) — shared blocks are counted
    /// once here and excluded from every sequence's private footprint.
    pub kv_shared_peak_bytes: f64,
    /// Admissions where the global cache tier held more of the prefix
    /// than the blade's own cache (0 without cluster coordination).
    #[serde(default)]
    pub remote_prefix_hits: u64,
    /// Of those, admissions where streaming the tier's KV span over the
    /// interconnect beat recomputing it locally.
    #[serde(default)]
    pub remote_prefix_streams: u64,
    /// Tier hits where local recompute won the race instead.
    #[serde(default)]
    pub remote_prefix_recomputes: u64,
    /// Cross-blade KV bytes streamed in from the global tier by the
    /// winning transfers.
    #[serde(default)]
    pub remote_kv_streamed_bytes: f64,
    /// Time-to-first-token percentiles (s).
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles (s).
    pub tpot: Percentiles,
    /// End-to-end request-latency percentiles (s).
    pub latency: Percentiles,
    /// Per-SLO-class breakdown, in class-index order. Always holds at
    /// least the default class; `goodput_tok_s` and `slo_attainment`
    /// above are the blends of these slices.
    pub per_class: Vec<SloClassReport>,
}

impl ServingReport {
    /// Mean decode-iteration cost (s) — the dynamic analogue of the
    /// static scheduler's `per_token_s`.
    #[must_use]
    pub fn mean_step_s(&self) -> f64 {
        if self.decode_iterations == 0 {
            0.0
        } else {
            self.decode_time_s / self.decode_iterations as f64
        }
    }

    /// Class-weighted goodput: `Σ weight_c · goodput_c`. Equals
    /// [`Self::goodput_tok_s`] for a single unit-weight class.
    #[must_use]
    pub fn weighted_goodput_tok_s(&self) -> f64 {
        self.per_class
            .iter()
            .map(|c| c.weight * c.goodput_tok_s)
            .sum()
    }

    /// The per-class slice named `name`, if any.
    #[must_use]
    pub fn class(&self, name: &str) -> Option<&SloClassReport> {
        self.per_class.iter().find(|c| c.name == name)
    }

    /// Fraction of prefix-cache lookups that hit (0.0 when the replay
    /// performed no lookups — caching off or no prefix-tagged requests).
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        let lookups = self.prefix_hits + self.prefix_misses;
        if lookups == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / lookups as f64
        }
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} done, {} evictions; {:.0} tok/s ({:.0} goodput); \
             TTFT p50/p95/p99 {:.0}/{:.0}/{:.0} ms; TPOT {:.1}/{:.1}/{:.1} ms",
            self.completed,
            self.requests,
            self.evictions,
            self.throughput_tok_s,
            self.goodput_tok_s,
            self.ttft.p50 * 1e3,
            self.ttft.p95 * 1e3,
            self.ttft.p99 * 1e3,
            self.tpot.p50 * 1e3,
            self.tpot.p95 * 1e3,
            self.tpot.p99 * 1e3
        )?;
        if self.shed_requests > 0 {
            write!(f, "; {} shed", self.shed_requests)?;
        }
        if self.prefix_hits + self.prefix_misses > 0 {
            write!(
                f,
                "; prefix hit rate {:.2} ({} tok prefill saved)",
                self.prefix_hit_rate(),
                self.prefix_tokens_saved
            )?;
        }
        if self.remote_prefix_hits > 0 {
            write!(
                f,
                "; {} tier hits ({} streamed, {:.1} MB over fabric)",
                self.remote_prefix_hits,
                self.remote_prefix_streams,
                self.remote_kv_streamed_bytes / 1e6
            )?;
        }
        Ok(())
    }
}

/// One point of the SLO-vs-throughput frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Offered arrival rate (requests/s).
    pub arrival_rate_per_s: f64,
    /// The replay outcome at that rate.
    pub report: ServingReport,
}
