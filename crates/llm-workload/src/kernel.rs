//! Kernel descriptors: the units of work the roofline model times.
//!
//! Each kernel carries its FLOP count and its memory traffic, split into
//! *weight* traffic (streamed from wherever parameters reside — DRAM, or
//! L2 when pinned there) and *activation* traffic (streamed from the
//! activation working level). This split is what lets the hierarchical
//! roofline reproduce the paper's compute-bound / memory-bound kernel
//! classification (Fig. 5 inset).

use crate::model::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of operation a kernel is (affects reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense matrix multiply.
    Gemm,
    /// Attention score/value batched GEMM.
    Attention,
    /// Softmax, layer-norm, activation functions, residual adds.
    Elementwise,
    /// Optimizer weight update.
    WeightUpdate,
    /// Embedding / LM-head lookup-GEMM.
    Embedding,
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Gemm => write!(f, "GEMM"),
            Self::Attention => write!(f, "ATTN"),
            Self::Elementwise => write!(f, "ELTW"),
            Self::WeightUpdate => write!(f, "UPD"),
            Self::Embedding => write!(f, "EMB"),
        }
    }
}

/// One kernel invocation pattern (already sharded to a single unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name for reports ("qkv_proj", "mlp_up", ...).
    pub name: String,
    /// Classification.
    pub class: KernelClass,
    /// Floating-point operations per invocation.
    pub flops: f64,
    /// Bytes of parameter traffic per invocation.
    pub weight_bytes: f64,
    /// Bytes of activation traffic per invocation.
    pub activation_bytes: f64,
    /// Times the kernel executes (e.g. once per layer per microbatch).
    pub invocations: f64,
    /// Whether the activation traffic is a *persistent* KV-cache stream
    /// (decode-phase attention): it then resides with the weights (DRAM)
    /// unless explicitly pinned to another level.
    pub kv_stream: bool,
}

impl Kernel {
    /// Builds a GEMM kernel `C[m,n] += A[m,k]·B[k,n]` where `B` holds
    /// weights, with every tensor in `precision`.
    #[must_use]
    pub fn gemm(
        name: impl Into<String>,
        class: KernelClass,
        m: f64,
        n: f64,
        k: f64,
        precision: Precision,
        invocations: f64,
    ) -> Self {
        let b = precision.bytes();
        Self {
            name: name.into(),
            class,
            flops: 2.0 * m * n * k,
            weight_bytes: k * n * b,
            activation_bytes: (m * k + m * n) * b,
            invocations,
            kv_stream: false,
        }
    }

    /// Builds an activation-only batched GEMM (attention scores/values):
    /// both operands are activations.
    #[must_use]
    pub fn activation_gemm(
        name: impl Into<String>,
        m: f64,
        n: f64,
        k: f64,
        batch: f64,
        precision: Precision,
        invocations: f64,
    ) -> Self {
        let b = precision.bytes();
        Self {
            name: name.into(),
            class: KernelClass::Attention,
            flops: 2.0 * m * n * k * batch,
            weight_bytes: 0.0,
            activation_bytes: (m * k + k * n + m * n) * b * batch,
            invocations,
            kv_stream: false,
        }
    }

    /// Builds an elementwise kernel over `elems` elements performing
    /// `ops_per_elem` FLOPs each, reading and writing once.
    #[must_use]
    pub fn elementwise(
        name: impl Into<String>,
        elems: f64,
        ops_per_elem: f64,
        precision: Precision,
        invocations: f64,
    ) -> Self {
        Self {
            name: name.into(),
            class: KernelClass::Elementwise,
            flops: elems * ops_per_elem,
            weight_bytes: 0.0,
            activation_bytes: 2.0 * elems * precision.bytes(),
            invocations,
            kv_stream: false,
        }
    }

    /// Total bytes per invocation.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.activation_bytes
    }

    /// Arithmetic intensity (FLOPs per byte).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / bytes
        }
    }

    /// Aggregate FLOPs over all invocations.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.flops * self.invocations
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ×{:.0}: {:.3} GFLOP, AI {:.1}",
            self.name,
            self.class,
            self.invocations,
            self.flops / 1e9,
            self.arithmetic_intensity()
        )
    }
}

/// A communication operation attached to the task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommOp {
    /// Descriptive name ("tp_allreduce_fwd", ...).
    pub name: String,
    /// Collective type.
    pub kind: CommKind,
    /// Bytes per member per invocation.
    pub bytes: f64,
    /// Communicator this op runs over.
    pub scope: CommScope,
    /// Times the op executes.
    pub invocations: f64,
}

/// Collective type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// Ring all-reduce.
    AllReduce,
    /// Ring all-gather.
    AllGather,
    /// Point-to-point send (pipeline hand-off).
    P2p,
}

/// Which parallel group a communication runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// The tensor-parallel group.
    TensorParallel,
    /// The data-parallel group.
    DataParallel,
    /// Adjacent pipeline stages.
    PipelineNeighbor,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_and_bytes() {
        let k = Kernel::gemm(
            "t",
            KernelClass::Gemm,
            64.0,
            1024.0,
            512.0,
            Precision::Bf16,
            1.0,
        );
        assert!((k.flops - 2.0 * 64.0 * 1024.0 * 512.0).abs() < 1.0);
        assert!((k.weight_bytes - 512.0 * 1024.0 * 2.0).abs() < 1.0);
        assert!((k.activation_bytes - (64.0 * 512.0 + 64.0 * 1024.0) * 2.0).abs() < 1.0);
    }

    #[test]
    fn intensity_grows_with_batch() {
        let small = Kernel::gemm(
            "s",
            KernelClass::Gemm,
            1.0,
            1024.0,
            1024.0,
            Precision::Bf16,
            1.0,
        );
        let large = Kernel::gemm(
            "l",
            KernelClass::Gemm,
            256.0,
            1024.0,
            1024.0,
            Precision::Bf16,
            1.0,
        );
        assert!(large.arithmetic_intensity() > small.arithmetic_intensity() * 50.0);
    }

    #[test]
    fn decode_gemv_intensity_near_batch() {
        // For m = B and large n, k: AI → B per byte-pair; with bf16 the
        // paper's "minimal data reuse" claim.
        let b = 8.0;
        let k = Kernel::gemm(
            "gemv",
            KernelClass::Gemm,
            b,
            16384.0,
            16384.0,
            Precision::Bf16,
            1.0,
        );
        let ai = k.arithmetic_intensity();
        assert!((ai - b).abs() < 0.5, "got {ai}");
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let k = Kernel::elementwise("softmax", 1e6, 5.0, Precision::Bf16, 1.0);
        assert!(k.arithmetic_intensity() < 2.0);
    }

    #[test]
    fn activation_gemm_has_no_weight_traffic() {
        let k = Kernel::activation_gemm("scores", 128.0, 128.0, 64.0, 32.0, Precision::Bf16, 1.0);
        assert_eq!(k.weight_bytes, 0.0);
        assert!(k.activation_bytes > 0.0);
    }

    #[test]
    fn zero_byte_kernel_has_infinite_intensity() {
        let k = Kernel {
            name: "noop".to_owned(),
            class: KernelClass::Gemm,
            flops: 10.0,
            weight_bytes: 0.0,
            activation_bytes: 0.0,
            invocations: 1.0,
            kv_stream: false,
        };
        assert!(k.arithmetic_intensity().is_infinite());
    }
}
