//! Smoke test: every figure/table entry function that `run_all` chains
//! together must run to completion without panicking and render non-empty
//! output. This is exactly the call list of `src/bin/run_all.rs`, so a
//! green run here means the full paper-reproduction binary works.

use scd_bench::{extensions as ext, inference_experiments as inf, l2_study, spec_tables as spec};
use scd_bench::{serving_experiments as srv, training_experiments as tr, validation};
use scd_perf::ScdError;

#[test]
fn every_run_all_stage_runs_and_renders() -> Result<(), ScdError> {
    let stages: Vec<(&str, String)> = vec![
        ("table1", spec::table1()),
        ("fig1_pcl_library", spec::fig1_pcl_library()),
        (
            "fig1_eda_flow",
            spec::render_eda_flow(&spec::fig1_eda_flow()?),
        ),
        ("fig2_datalink", spec::fig2_datalink()),
        ("fig3_blade_specs", spec::fig3_blade_specs()),
        ("fig5", tr::render_fig5(&tr::fig5_sweep()?)),
        ("fig6", tr::render_fig6(&tr::fig6_rows()?)),
        ("fig7", inf::render_fig7(&inf::fig7_sweep()?)),
        ("fig7a", inf::render_fig7a(&inf::fig7a_sweep()?)),
        ("fig7b", inf::render_fig7b(&inf::fig7b_sweep()?)),
        ("fig8a", inf::render_fig8a(&inf::fig8a_rows()?)),
        ("fig8b", inf::render_fig8b(&inf::fig8b_sweep()?)),
        (
            "l2_kv_study",
            l2_study::render_l2_study(&l2_study::l2_kv_study()?),
        ),
        (
            "noc_validation",
            validation::render_validation(&validation::noc_validation()?),
        ),
        (
            "multi_blade",
            ext::render_multi_blade(&ext::multi_blade_scaling()?),
        ),
        (
            "jsram_study",
            ext::render_jsram_study(&ext::jsram_inference_study()?),
        ),
        ("energy", ext::render_energy(&ext::energy_projection()?)),
        (
            "adder_ablation",
            ext::render_adder_ablation(&ext::adder_ablation()?),
        ),
        (
            "window_ablation",
            ext::render_window_ablation(&ext::window_ablation()?),
        ),
        (
            "fabric_ablation",
            ext::render_fabric_ablation(&ext::fabric_ablation()?),
        ),
        ("serving", ext::render_serving(&ext::serving_capacity()?)),
        (
            "serving_frontier",
            srv::render_serving_frontier(&srv::scd_serving_frontier()?),
        ),
        (
            "serving_comparison",
            srv::render_serving_comparison(&srv::scd_vs_gpu_serving()?),
        ),
        (
            "cluster_routing",
            srv::render_cluster_routing(&srv::cluster_routing_study()?),
        ),
        ("paged_kv", srv::render_paged_kv(&srv::paged_kv_study()?)),
        (
            "disaggregation",
            srv::render_disaggregation(&srv::disaggregation_study()?),
        ),
        (
            "recorded_trace",
            srv::render_recorded_trace(&srv::recorded_trace_study()?),
        ),
        (
            "prefix_caching",
            srv::render_prefix_caching(&srv::prefix_caching_study()?),
        ),
        (
            "cluster_cache",
            srv::render_cluster_cache(&srv::cluster_cache_study()?),
        ),
        (
            "slo_classes",
            srv::render_slo_classes(&srv::slo_class_study()?),
        ),
        (
            "control_plane",
            srv::render_control_plane(&srv::control_plane_study()?),
        ),
    ];
    for (name, rendered) in stages {
        assert!(
            rendered.trim().lines().count() >= 2,
            "stage {name} rendered almost nothing: {rendered:?}"
        );
    }
    Ok(())
}
