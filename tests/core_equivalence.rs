//! The event-driven simulation core must be *bit-identical* to the
//! per-step reference loops on every workload: same reports, same
//! per-blade accounting, same observer event streams. The per-step core
//! stays in the tree exactly so this suite can replay each scenario on
//! both and compare to the last bit — across policies (each
//! `OrderingContract`), KV layouts, pricing modes, chunked prefill,
//! prefix caching, cluster dispatch modes and the disaggregated
//! prefill→decode topology.

use llm_workload::kvcache::{KvCache, KvConvention};
use llm_workload::model::{ModelZoo, TransformerConfig};
use llm_workload::Parallelism;
use optimus::serving::{
    AdmissionControl, AutoscaleConfig, ClusterReport, ControlPlane, CountingObserver,
    DecodePricing, DispatchMode, EventHeap, MaxWaitGuardPolicy, RequestSpec, RoutingPolicy,
    Scenario, SharedPrefixTraceConfig, SimCore, SjfPolicy, SloClass, StrictPriorityPolicy,
    Topology, TraceConfig, WeightedFairPolicy,
};
use optimus::MultiBladeSystem;
use proptest::prelude::*;

/// KV bytes for one token of `model` at the system's serving precision.
fn per_token_bytes(system: &MultiBladeSystem, model: &TransformerConfig) -> f64 {
    KvCache {
        batch: 1,
        seq_len: 1,
        precision: system.inference_estimator().precision(),
    }
    .bytes(model, KvConvention::Gqa)
}

/// Compiles `build()` under both cores, runs each, and asserts the full
/// cluster reports (global + per-blade + per-class) are identical.
fn assert_cores_agree<'a>(label: &str, build: impl Fn() -> Scenario<'a>) -> ClusterReport {
    let event = build()
        .core(SimCore::EventDriven)
        .compile()
        .unwrap()
        .run()
        .unwrap();
    let per_step = build()
        .core(SimCore::PerStep)
        .compile()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(event, per_step, "{label}: cores must be bit-identical");
    assert_eq!(
        event.report.makespan_s.to_bits(),
        per_step.report.makespan_s.to_bits(),
        "{label}: makespan bits"
    );
    assert_eq!(
        event.report.decode_time_s.to_bits(),
        per_step.report.decode_time_s.to_bits(),
        "{label}: decode time bits"
    );
    event
}

#[test]
fn single_blade_cores_agree_across_policies_and_pressure() {
    let system = MultiBladeSystem::new(1).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    // Underloaded trickle: the regime the idle fast-forward and decode
    // stretches exist for.
    let trickle = TraceConfig {
        seed: 11,
        requests: 40,
        arrival_rate_per_s: 3.0,
        prompt_tokens: (32, 256),
        output_tokens: (8, 64),
    };
    // Saturating burst with tight KV: eviction/re-admission churn.
    let burst = TraceConfig {
        seed: 13,
        requests: 18,
        arrival_rate_per_s: 500.0,
        prompt_tokens: (90, 96),
        output_tokens: (24, 32),
    };
    let tight = per_token_bytes(&system, &model) * f64::from(96 + 32) * 2.5;
    let base = |trace: TraceConfig| {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
            .poisson(trace)
    };
    let r = assert_cores_agree("fcfs trickle", || base(trickle));
    assert_eq!(r.report.completed, 40);
    assert_cores_agree("sjf trickle", || base(trickle).policy(SjfPolicy));
    assert_cores_agree("guard trickle", || {
        base(trickle).policy(MaxWaitGuardPolicy::new(0.5))
    });
    let r = assert_cores_agree("fcfs tight kv", || base(burst).kv_capacity_bytes(tight));
    assert!(r.report.evictions > 0, "pressure must preempt");
    assert_cores_agree("sjf tight kv", || {
        base(burst).kv_capacity_bytes(tight).policy(SjfPolicy)
    });
    assert_cores_agree("guard tight kv", || {
        base(burst)
            .kv_capacity_bytes(tight)
            .policy(MaxWaitGuardPolicy::new(0.05))
    });
}

#[test]
fn single_blade_cores_agree_across_kv_and_pricing_features() {
    let system = MultiBladeSystem::new(1).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = TraceConfig {
        seed: 21,
        requests: 24,
        arrival_rate_per_s: 20.0,
        prompt_tokens: (64, 512),
        output_tokens: (8, 48),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(8)
            .unconstrained_kv()
            .poisson(trace)
    };
    let r = assert_cores_agree("paged kv", || base().paged_kv(64));
    assert!(r.report.kv_fragmentation_peak_bytes > 0.0);
    assert_cores_agree("chunked prefill", || base().chunked_prefill(64));
    assert_cores_agree("exact pricing", || {
        base().pricing(DecodePricing::ExactPerSequence)
    });
    assert_cores_agree("kitchen sink", || {
        base()
            .paged_kv(32)
            .chunked_prefill(128)
            .pricing(DecodePricing::ExactPerSequence)
            .policy(SjfPolicy)
    });
}

#[test]
fn cluster_and_disaggregated_cores_agree() {
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = TraceConfig {
        seed: 31,
        requests: 48,
        arrival_rate_per_s: 40.0,
        prompt_tokens: (32, 384),
        output_tokens: (8, 64),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
            .poisson(trace)
    };
    assert_cores_agree("jsq per-blade", || {
        base().routing(RoutingPolicy::JoinShortestQueue)
    });
    let r = assert_cores_agree("central fcfs", || base().dispatch(DispatchMode::Central));
    assert!(
        r.stretch.stretched_iterations > 0,
        "the cluster leapfrog must batch decode rounds"
    );
    assert!(r.stretch.mean_stretch_len() >= 1.0);
    assert_cores_agree("central sjf", || {
        base().dispatch(DispatchMode::Central).policy(SjfPolicy)
    });
    assert_cores_agree("central guard", || {
        base()
            .dispatch(DispatchMode::Central)
            .policy(MaxWaitGuardPolicy::new(0.2))
    });
    let r = assert_cores_agree("disaggregated fcfs", || {
        base().topology(Topology::disaggregated(1, 3))
    });
    assert_eq!(r.report.completed, 48);
    assert!(
        r.stretch.stretched_iterations > 0,
        "the decoder-pool leapfrog must batch decode rounds"
    );
    assert_cores_agree("disaggregated sjf", || {
        base()
            .topology(Topology::disaggregated(2, 2))
            .policy(SjfPolicy)
    });
    // Central dispatch under KV pressure: eviction causality flows
    // through the shared queue identically on both cores.
    let two = MultiBladeSystem::new(2).unwrap();
    let tight = per_token_bytes(&two, &model) * f64::from(96 + 32) * 1.5;
    let pressure = TraceConfig {
        seed: 13,
        requests: 18,
        arrival_rate_per_s: 500.0,
        prompt_tokens: (90, 96),
        output_tokens: (24, 32),
    };
    let r = assert_cores_agree("central tight kv", || {
        Scenario::new(&two)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .kv_capacity_bytes(tight)
            .dispatch(DispatchMode::Central)
            .poisson(pressure)
    });
    assert!(r.report.evictions > 0);
}

#[test]
fn class_aware_policies_and_control_plane_cores_agree() {
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    // Sustained overload so ordering, shedding and scaling all matter.
    let trace = TraceConfig {
        seed: 41,
        requests: 48,
        arrival_rate_per_s: 120.0,
        prompt_tokens: (32, 384),
        output_tokens: (8, 64),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .unconstrained_kv()
            .slo_classes(vec![
                // An unattainable strict target (TTFT below any prefill
                // time): every gate below latches no matter how the
                // dispatch mode spreads the load.
                SloClass::new("interactive", 1e-6, 1e-9).with_weight(2.0),
                SloClass::batch(),
            ])
            .classify(|r| u32::from(r.prompt_tokens > 128))
            .poisson(trace)
    };
    assert_cores_agree("strict-priority single", || {
        base()
            .topology(Topology::mixed(1))
            .policy(StrictPriorityPolicy::new())
    });
    assert_cores_agree("strict-priority central", || {
        base()
            .dispatch(DispatchMode::Central)
            .policy(StrictPriorityPolicy::new())
    });
    assert_cores_agree("weighted-fair central", || {
        base()
            .dispatch(DispatchMode::Central)
            .policy(WeightedFairPolicy::new())
    });
    assert_cores_agree("weighted-fair per-blade jsq", || {
        base()
            .routing(RoutingPolicy::JoinShortestQueue)
            .policy(WeightedFairPolicy::new())
    });
    // Load shedding: the hopeless 20 ms TTFT floor latches the gate open,
    // so best-effort requests are dropped — identically on both cores,
    // through the engine gate (single blade), the per-blade merged gates
    // and the central shared gate. The short window lets even a per-blade
    // gate (which sees only its own ~12-request share) gather enough
    // strict completions to latch.
    let shed = ControlPlane::new().shed(AdmissionControl::new(0, 0.95).with_window(8, 2));
    let r = assert_cores_agree("shedding single", || {
        base().topology(Topology::mixed(1)).control(shed)
    });
    assert!(r.report.shed_requests > 0, "the gate must fire");
    let r = assert_cores_agree("shedding per-blade", || base().control(shed));
    assert!(r.report.shed_requests > 0);
    let r = assert_cores_agree("shedding central", || {
        base().dispatch(DispatchMode::Central).control(shed)
    });
    assert!(r.report.shed_requests > 0);
    assert!(
        r.stretch.stretches > 0,
        "leapfrogging must coexist with a live shedding gate"
    );
    // The autoscaler's end-of-round evaluation sees the same queue depth
    // on both cores, so the scale trajectories coincide.
    let scaled = ControlPlane::new().autoscale(
        AutoscaleConfig::new(1, 4)
            .with_watermarks(0, 3)
            .with_warmup(0.05),
    );
    let r = assert_cores_agree("autoscaled central", || {
        base().dispatch(DispatchMode::Central).control(scaled)
    });
    assert!(r.scale_events > 0, "the backlog must trigger a scale-up");
    assert!(
        r.stretch.stretches > 0,
        "per-blade stretches must survive an active autoscaler"
    );
    // Everything at once: class-aware ordering + shedding + autoscaling.
    assert_cores_agree("full control plane", || {
        base()
            .dispatch(DispatchMode::Central)
            .policy(WeightedFairPolicy::new())
            .control(shed.autoscale(AutoscaleConfig::new(2, 4).with_watermarks(1, 3)))
    });
    assert_cores_agree("full control plane, strict-priority", || {
        base()
            .dispatch(DispatchMode::Central)
            .policy(StrictPriorityPolicy::new())
            .control(shed.autoscale(AutoscaleConfig::new(2, 4).with_watermarks(1, 3)))
    });
}

#[test]
fn prefix_cached_cores_agree() {
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = SharedPrefixTraceConfig {
        seed: 27,
        requests: 32,
        arrival_rate_per_s: 120.0,
        prefixes: 3,
        prefix_tokens: (100, 260),
        zipf_s: 1.0,
        share_fraction: 0.8,
        unique_prompt_tokens: (16, 64),
        output_tokens: (8, 32),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
            .prefix_caching(16)
            .trace(&trace)
    };
    let r = assert_cores_agree("prefix single", || base().topology(Topology::mixed(1)));
    assert!(r.report.prefix_hits > 0, "the cache must be exercised");
    assert_cores_agree("prefix central", || {
        base()
            .topology(Topology::mixed(4))
            .dispatch(DispatchMode::Central)
    });
    assert_cores_agree("prefix disaggregated", || {
        base().topology(Topology::disaggregated(1, 3))
    });
}

#[test]
fn coordinated_cluster_cores_agree() {
    // Cluster coordination — cache-aware routing, the global KV tier,
    // LFU eviction — is computed in arrival-order pre-passes off the
    // trace alone, so it must leave the two cores bit-identical just
    // like the base prefix cache does.
    use optimus::serving::{CacheEviction, HandoffLink};
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = SharedPrefixTraceConfig {
        seed: 27,
        requests: 32,
        arrival_rate_per_s: 120.0,
        prefixes: 3,
        prefix_tokens: (100, 260),
        zipf_s: 1.0,
        share_fraction: 0.8,
        unique_prompt_tokens: (16, 64),
        output_tokens: (8, 32),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(6)
            .unconstrained_kv()
            .prefix_caching(16)
            .cache_eviction(CacheEviction::Lfu)
            .global_kv_cache(1 << 20)
            .handoff(HandoffLink {
                bytes_per_s: 1e12,
                latency_s: 1e-6,
            })
            .trace(&trace)
    };
    let r = assert_cores_agree("coordinated cache-aware", || {
        base()
            .topology(Topology::mixed(4))
            .routing(RoutingPolicy::CacheAware)
    });
    assert!(r.report.prefix_hits > 0, "the cache must be exercised");
    assert_cores_agree("coordinated central", || {
        base()
            .topology(Topology::mixed(4))
            .dispatch(DispatchMode::Central)
    });
    assert_cores_agree("coordinated disaggregated", || {
        base().topology(Topology::disaggregated(1, 3))
    });
}

#[test]
fn observer_event_streams_are_identical_between_cores() {
    // A non-passive observer forces the event core's decode stretches
    // onto their callback-dispatching path: the full event stream (not
    // just the report) must match the per-step core's.
    let system = MultiBladeSystem::new(1).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = TraceConfig {
        seed: 7,
        requests: 24,
        arrival_rate_per_s: 5.0,
        prompt_tokens: (32, 256),
        output_tokens: (8, 48),
    };
    let run = |core: SimCore| {
        let compiled = Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .unconstrained_kv()
            .poisson(trace)
            .core(core)
            .compile()
            .unwrap();
        let mut observer = CountingObserver::default();
        let report = compiled.run_observed(&mut observer).unwrap();
        (report, observer.counts())
    };
    let (event_report, event_counts) = run(SimCore::EventDriven);
    let (step_report, step_counts) = run(SimCore::PerStep);
    assert_eq!(event_report, step_report);
    assert_eq!(event_counts, step_counts, "same events, same counts");
    assert_eq!(event_counts.completions, 24);
    assert!(event_counts.steps > 0);
}

#[test]
fn cluster_observer_event_streams_are_identical_between_cores() {
    // The cluster leapfrog and the disaggregated decoder-pool leapfrog
    // replay skipped rounds in true global order, so even with a
    // non-passive observer attached the per-step callback stream — one
    // `on_step` per decode round, in execution order — must be
    // reproduced exactly. Shedding keeps the control plane live on the
    // central variant while the observer watches.
    let system = MultiBladeSystem::new(4).unwrap();
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1).unwrap();
    let trace = TraceConfig {
        seed: 19,
        requests: 36,
        arrival_rate_per_s: 30.0,
        prompt_tokens: (32, 256),
        output_tokens: (8, 48),
    };
    let shed = ControlPlane::new().shed(AdmissionControl::new(0, 0.95).with_window(8, 2));
    fn check<'a>(label: &str, build: &dyn Fn() -> Scenario<'a>) {
        let run = |core: SimCore| {
            let compiled = build().core(core).compile().unwrap();
            let mut observer = CountingObserver::default();
            let report = compiled.run_observed(&mut observer).unwrap();
            (report, observer.counts())
        };
        let (event_report, event_counts) = run(SimCore::EventDriven);
        let (step_report, step_counts) = run(SimCore::PerStep);
        assert_eq!(event_report, step_report, "{label}: reports");
        assert_eq!(event_counts, step_counts, "{label}: event streams");
        assert!(event_counts.steps > 0, "{label}");
    }
    check("central + shedding", &|| {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .unconstrained_kv()
            .slo_classes(vec![
                SloClass::new("interactive", 1e-6, 1e-9).with_weight(2.0),
                SloClass::batch(),
            ])
            .classify(|r| u32::from(r.prompt_tokens > 128))
            .dispatch(DispatchMode::Central)
            .control(shed)
            .poisson(trace)
    });
    check("disaggregated 2P+2D", &|| {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .unconstrained_kv()
            .topology(Topology::disaggregated(2, 2))
            .poisson(trace)
    });
}

/// A random sorted trace over exact (dyadic) arrival times.
fn arb_trace() -> impl Strategy<Value = Vec<RequestSpec>> {
    prop::collection::vec((0u32..48, 8u32..260, 1u32..48), 4..20).prop_map(|specs| {
        let mut arrivals: Vec<f64> = specs
            .iter()
            .map(|&(a, _, _)| f64::from(a) * 0.0625)
            .collect();
        arrivals.sort_by(f64::total_cmp);
        specs
            .iter()
            .zip(&arrivals)
            .enumerate()
            .map(|(i, (&(_, prompt, output), &arrival))| {
                RequestSpec::new(i as u32, arrival, prompt, output)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traces × policies × KV pressure × layouts × topologies ×
    /// prefix caching × observation: the two cores never diverge by a
    /// single bit — in reports or in observer event streams.
    #[test]
    fn cores_agree_on_random_scenarios(
        trace in arb_trace(),
        policy in 0usize..5,
        topology in 0usize..4,
        kv in 0usize..3,
        control in 0usize..3,
        paged in any::<bool>(),
        chunked in any::<bool>(),
        exact in any::<bool>(),
        prefix in any::<bool>(),
        observed in any::<bool>(),
    ) {
        let system = MultiBladeSystem::new(4).unwrap();
        let model = ModelZoo::llama2_7b();
        let par = Parallelism::new(1, 1, 1).unwrap();
        let per_token = per_token_bytes(&system, &model);
        // Two shared system prompts (block-aligned to the 16-token page)
        // tagged deterministically by request id; prompts too short to
        // hold theirs stay unique.
        let trace: Vec<RequestSpec> = if prefix {
            trace
                .iter()
                .map(|r| {
                    let (id, tokens) = if r.id % 2 == 0 { (0, 48) } else { (1, 96) };
                    if r.prompt_tokens > tokens {
                        r.with_prefix(id, tokens)
                    } else {
                        *r
                    }
                })
                .collect()
        } else {
            trace
        };
        // The shedding gate needs a sheddable second class, and any
        // control needs a mixed topology; class-aware policies work
        // either way but only bite with a class table bound.
        let classed = policy >= 3 || control > 0;
        let build = || {
            let mut s = Scenario::new(&system)
                .model(&model)
                .parallelism(&par)
                .max_batch(4)
                .requests(trace.clone());
            s = match kv {
                0 => s.unconstrained_kv(),
                // Room for ~1.7 / ~3 worst-case requests: eviction churn
                // without rejecting any single request (paged rounding
                // included).
                1 => s.kv_capacity_bytes(per_token * 384.0 * 1.7),
                _ => s.kv_capacity_bytes(per_token * 384.0 * 3.0),
            };
            s = match policy {
                0 => s,
                1 => s.policy(SjfPolicy),
                2 => s.policy(MaxWaitGuardPolicy::new(0.25)),
                3 => s.policy(StrictPriorityPolicy::new()),
                _ => s.policy(WeightedFairPolicy::new()),
            };
            if classed {
                s = s
                    .slo_classes(vec![
                        SloClass::new("strict", 0.05, 0.005).with_weight(2.0),
                        SloClass::batch(),
                    ])
                    .classify(|r| u32::from(r.prompt_tokens > 128));
            }
            s = match topology {
                0 => s.topology(Topology::mixed(1)),
                1 => s
                    .topology(Topology::mixed(4))
                    .routing(RoutingPolicy::JoinShortestQueue),
                2 => s
                    .topology(Topology::mixed(4))
                    .dispatch(DispatchMode::Central),
                _ => s.topology(Topology::disaggregated(1, 3)),
            };
            // Control planes don't compose with the disaggregated
            // topology, and the autoscaler needs central dispatch.
            if control > 0 && topology != 3 {
                let mut cp = ControlPlane::new().shed(AdmissionControl::new(0, 0.9));
                if control == 2 && topology == 2 {
                    cp = cp.autoscale(
                        AutoscaleConfig::new(2, 4).with_watermarks(0, 3).with_warmup(0.1),
                    );
                }
                s = s.control(cp);
            }
            if paged {
                s = s.paged_kv(64);
            }
            if chunked {
                s = s.chunked_prefill(64);
            }
            if exact {
                s = s.pricing(DecodePricing::ExactPerSequence);
            }
            if prefix {
                s = s.prefix_caching(16);
            }
            s
        };
        let run = |core: SimCore| {
            let compiled = build().core(core).compile().unwrap();
            let mut observer = CountingObserver::default();
            let report = if observed {
                compiled.run_observed(&mut observer).unwrap()
            } else {
                compiled.run().unwrap()
            };
            (report, observer.counts())
        };
        let (event, event_counts) = run(SimCore::EventDriven);
        let (per_step, step_counts) = run(SimCore::PerStep);
        prop_assert_eq!(&event, &per_step);
        prop_assert_eq!(event_counts, step_counts);
        prop_assert_eq!(
            u64::from(event.report.completed) + event.report.shed_requests,
            trace.len() as u64
        );
        prop_assert_eq!(
            event.report.makespan_s.to_bits(),
            per_step.report.makespan_s.to_bits()
        );
    }

    /// Heap invariant: pops come out nondecreasing in (time, idx) and no
    /// entry is lost or duplicated.
    #[test]
    fn event_heap_pops_sorted_and_lossless(times in prop::collection::vec(0u32..1000, 1..200)) {
        let mut heap = EventHeap::new();
        let mut expected: Vec<(f64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (f64::from(t) * 0.125, i))
            .collect();
        for &(t, i) in &expected {
            heap.push(t, i);
        }
        prop_assert_eq!(heap.len(), expected.len());
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some(e) = heap.pop() {
            popped.push(e);
        }
        prop_assert!(heap.is_empty());
        prop_assert_eq!(popped.len(), expected.len());
        for (&(pt, pi), &(et, ei)) in popped.iter().zip(&expected) {
            prop_assert_eq!(pt.to_bits(), et.to_bits());
            prop_assert_eq!(pi, ei);
        }
    }

    /// Lazy deletion: after arbitrary requeues, the valid head is always
    /// the live minimum, and draining yields each index exactly once.
    #[test]
    fn event_heap_lazy_deletion_tracks_live_minimum(
        n in 1usize..24,
        updates in prop::collection::vec((any::<prop::sample::Index>(), 0u32..1000), 0..64),
    ) {
        let mut heap = EventHeap::new();
        let ids: Vec<usize> = (0..n).collect();
        let mut live: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for (i, &t) in live.iter().enumerate() {
            heap.push(t, i);
        }
        for (pick, t) in updates {
            let i = *pick.get(&ids);
            live[i] = f64::from(t) * 0.25;
            heap.push(live[i], i);
        }
        let mut alive = vec![true; n];
        for _ in 0..n {
            let head = heap
                .peek_valid(|t, i| alive[i] && live[i].to_bits() == t.to_bits())
                .expect("live entries remain");
            let want = (0..n)
                .filter(|&i| alive[i])
                .map(|i| (live[i], i))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .expect("someone is alive");
            prop_assert_eq!(head.0.to_bits(), want.0.to_bits());
            prop_assert_eq!(head.1, want.1);
            // peek_valid leaves the valid head on top; consume it.
            let popped = heap.pop().expect("head stays queued");
            prop_assert_eq!(popped.1, want.1);
            alive[want.1] = false;
        }
        prop_assert!(heap
            .peek_valid(|t, i| alive[i] && live[i].to_bits() == t.to_bits())
            .is_none());
    }
}
