//! Error types for the workload layer.

use std::error::Error;
use std::fmt;

/// Errors from building workloads or parallelization plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A parallelism degree was invalid for the model/system.
    InvalidParallelism {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A model configuration was inconsistent.
    InvalidModel {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A request shape was degenerate (zero batch, tokens, ...).
    InvalidRequest {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParallelism { reason } => write!(f, "invalid parallelism: {reason}"),
            Self::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            Self::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = WorkloadError::InvalidParallelism {
            reason: "tp=3 does not divide 48 heads".to_owned(),
        };
        assert!(e.to_string().contains("tp=3"));
    }
}
