//! Criterion bench: the Starling RTL→PCL flow.

use criterion::{criterion_group, criterion_main, Criterion};
use scd_eda::blocks;
use scd_eda::flow::StarlingFlow;
use scd_tech::Technology;
use std::hint::black_box;

fn bench_eda(c: &mut Criterion) {
    let flow = StarlingFlow::new(Technology::scd_nbtin());
    let adder = blocks::ripple_adder(8).expect("adder8");
    c.bench_function("eda/compile_adder8_verified", |b| {
        b.iter(|| flow.compile(black_box(&adder)))
    });
    let unverified = flow.clone().without_verification();
    let mac = blocks::bf16_mac().expect("mac");
    c.bench_function("eda/compile_bf16_mac", |b| {
        b.iter(|| unverified.compile(black_box(&mac)))
    });
}

criterion_group!(benches, bench_eda);
criterion_main!(benches);
