//! Cluster-wide prefix-cache coordination: cache-aware routing and a
//! global KV cache tier.
//!
//! PR 5 gave every blade a private radix-tree [`PrefixCache`], but the
//! cluster router stayed cache-blind: N blades re-prefill the same
//! Zipf-head system prompt N times, so equal aggregate KV capacity buys
//! far less than it should. This module makes the prefix cache a
//! cluster-level resource, with three cooperating pieces:
//!
//! * **Cache-aware routing** ([`RoutingPolicy::CacheAware`]) — the router
//!   keeps a per-blade `ResidencyModel` of which prefix chains (and how
//!   many blocks of each) are resident, maintained incrementally from the
//!   same admissions the routing pre-pass already walks, and sends a
//!   tagged request to the blade with the longest matching resident
//!   chain. Untagged requests, cold prefixes, and ties fall back to
//!   join-shortest-queue, and a load-imbalance guard
//!   ([`CACHE_AWARE_MAX_IMBALANCE`]) caps how far affinity may override
//!   load so a hot prefix cannot starve a blade.
//! * **A global cache tier** ([`GlobalCacheConfig`]) — a budget-bounded
//!   cluster-level [`PrefixCache`] populated by insert-through from every
//!   admission and drained by its own reclamation. A hit streams the
//!   cached KV span to the target blade over the compiled
//!   [`HandoffLink`], roofline-priced and *raced against recompute*:
//!   whichever is cheaper at the compiled link bandwidth wins, and the
//!   choice is recorded through
//!   [`SimObserver::on_remote_cache_hit`](super::observer::SimObserver::on_remote_cache_hit).
//! * **Popularity-weighted eviction**
//!   ([`CacheEviction::Lfu`](super::prefix::CacheEviction::Lfu)) — both the
//!   tier and the blade caches can reclaim least-frequently-used first,
//!   so the head of a Zipf request distribution never falls out under
//!   pressure (see [`super::prefix`]).
//!
//! # Determinism
//!
//! The tier is consulted **at arrival**, not at admission: a
//! `CoordPlan` is computed once per replay by walking the trace in
//! arrival order, producing an immutable per-request table of
//! tier-covered tokens that the engine then reads at admission time.
//! That makes the plan — and therefore every transfer-vs-recompute race —
//! a pure function of the trace and config, identical across dispatch
//! modes, simulation cores, and serial/parallel replay. All tier and
//! residency bookkeeping is integer, so coordination never perturbs the
//! audited float stream; with coordination off (the default) nothing
//! here runs at all.
//!
//! [`RoutingPolicy::CacheAware`]: super::cluster::RoutingPolicy::CacheAware
//! [`HandoffLink`]: super::cluster::HandoffLink

use super::cluster::HandoffLink;
use super::prefix::{PrefixBlock, PrefixCache, PrefixCachingConfig};
use super::traces::RequestSpec;
use crate::error::OptimusError;
use serde::{Deserialize, Serialize};

/// Load-imbalance guard for cache-aware routing: a blade wins on cache
/// affinity only while its in-flight backlog exceeds the
/// join-shortest-queue choice by at most this many requests. Beyond
/// that, load wins and the request routes as JSQ would — a hot prefix
/// can concentrate traffic, but never starve a blade.
pub const CACHE_AWARE_MAX_IMBALANCE: usize = 2;

/// Configuration of the global KV cache tier (off by default; enable via
/// [`Scenario::global_kv_cache`](super::scenario::Scenario::global_kv_cache)).
///
/// The tier is a cluster-level [`PrefixCache`] holding at most
/// `budget_tokens` of KV at the blade caches' block granularity,
/// reclaimed in the same [`CacheEviction`](super::prefix::CacheEviction)
/// order as the blade caches.
/// Requires prefix caching and an interconnect
/// [`HandoffLink`] — both are compile-time validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalCacheConfig {
    /// KV budget of the tier (tokens, charged at block granularity).
    /// Must hold at least one block.
    pub budget_tokens: u64,
}

impl GlobalCacheConfig {
    pub(crate) fn validate(&self, prefix: &PrefixCachingConfig) -> Result<(), OptimusError> {
        if self.budget_tokens < u64::from(prefix.block_tokens) {
            return Err(OptimusError::Serving {
                reason: format!(
                    "global cache tier budget of {} tokens holds less than one \
                     {}-token block",
                    self.budget_tokens, prefix.block_tokens
                ),
            });
        }
        Ok(())
    }
}

/// The compiled coordination plan one replay runs under: for each trace
/// index, how many leading prompt tokens the global tier held when the
/// request arrived, plus the link those tokens would stream over. The
/// engine races the stream against local recompute at admission time.
#[derive(Debug, Clone)]
pub(crate) struct CoordPlan {
    /// Per trace index: leading prompt tokens resident in the tier at
    /// arrival (0 for untagged requests and tier misses).
    pub(crate) covered: Vec<u32>,
    /// The interconnect a tier hit streams over.
    pub(crate) link: HandoffLink,
}

/// Walks the trace in arrival order through a budget-bounded global
/// [`PrefixCache`], recording per request how many leading prompt tokens
/// the tier held at its arrival. Every tagged request inserts its chain
/// through to the tier (insert-through), references are dropped
/// immediately — the tier holds *copies*, not sequence pins — and the
/// budget is re-enforced after each arrival.
pub(crate) fn plan_global_tier(
    trace: &[RequestSpec],
    prefix: PrefixCachingConfig,
    global: GlobalCacheConfig,
    link: HandoffLink,
) -> Result<CoordPlan, OptimusError> {
    let mut order: Vec<usize> = (0..trace.len()).collect();
    // Same stable (arrival, index) order the engine's arrival queue uses.
    order.sort_by(|&a, &b| {
        trace[a]
            .arrival_s
            .total_cmp(&trace[b].arrival_s)
            .then(a.cmp(&b))
    });
    let mut tier = PrefixCache::with_eviction(prefix.eviction);
    let mut covered = vec![0u32; trace.len()];
    for &idx in &order {
        let Some(p) = trace[idx].prefix else { continue };
        let chain = p.block_chain(prefix.block_tokens);
        let hits = tier.acquire(&chain);
        covered[idx] = chain[..hits].iter().map(|b| b.tokens).sum();
        tier.insert(&chain, hits)?;
        tier.release(&chain, chain.len())?;
        tier.evict_to_budget(prefix.block_tokens, global.budget_tokens);
    }
    Ok(CoordPlan { covered, link })
}

/// The router's per-blade picture of prefix residency, maintained
/// incrementally from its own routing decisions: each blade's model is a
/// budget-bounded [`PrefixCache`] that admits the chain of every tagged
/// request routed there. A deliberate *model*, not a replica of the
/// engine's blade caches (the router runs before the replay exists) —
/// but it evicts at the same KV budget and in the same order, so
/// residency tracks what the blade will actually hold.
#[derive(Debug)]
pub(crate) struct ResidencyModel {
    blades: Vec<PrefixCache>,
    block_tokens: u32,
    /// Per-blade KV budget (tokens) the model evicts to.
    budget_tokens: u64,
}

impl ResidencyModel {
    pub(crate) fn new(blades: usize, prefix: PrefixCachingConfig, budget_tokens: u64) -> Self {
        Self {
            blades: (0..blades)
                .map(|_| PrefixCache::with_eviction(prefix.eviction))
                .collect(),
            block_tokens: prefix.block_tokens,
            budget_tokens,
        }
    }

    /// The blade holding the longest resident prefix of `chain`, with the
    /// match length in blocks. `None` when no blade holds any block
    /// (ties break toward the lowest blade index).
    pub(crate) fn best_blade(&self, chain: &[PrefixBlock]) -> Option<(usize, usize)> {
        self.blades
            .iter()
            .map(|c| c.peek(chain))
            .enumerate()
            .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
            .filter(|&(_, blocks)| blocks > 0)
    }

    /// Records that a request carrying `chain` was routed to `blade`:
    /// the chain becomes resident there and the blade's model is pruned
    /// back to its KV budget.
    pub(crate) fn admit(&mut self, blade: usize, chain: &[PrefixBlock]) {
        let cache = &mut self.blades[blade];
        let hits = cache.acquire(chain);
        cache
            .insert(chain, hits)
            .expect("suffix blocks past an acquire are non-resident");
        cache
            .release(chain, chain.len())
            .expect("releasing exactly the references just taken");
        cache.evict_to_budget(self.block_tokens, self.budget_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::prefix::{CacheEviction, SharedPrefix};
    use scd_tech::units::Bandwidth;

    fn tagged(id: u32, arrival_s: f64, prefix_id: u64, tokens: u32) -> RequestSpec {
        RequestSpec::new(id, arrival_s, tokens + 8, 4).with_prefix(prefix_id, tokens)
    }

    fn link() -> HandoffLink {
        HandoffLink::new(Bandwidth::from_tbps(1.0), 1e-5)
    }

    fn cfg(eviction: CacheEviction) -> PrefixCachingConfig {
        PrefixCachingConfig {
            block_tokens: 16,
            eviction,
        }
    }

    #[test]
    fn plan_covers_repeat_prefixes_in_arrival_order() {
        // Trace indices deliberately disagree with arrival order: the
        // plan must walk arrivals, so the *earliest* holder of prefix 1
        // misses and the later one hits the full chain.
        let trace = [
            tagged(0, 2.0, 1, 32),           // arrives second: full tier hit
            tagged(1, 1.0, 1, 32),           // arrives first: cold miss
            RequestSpec::new(2, 3.0, 64, 4), // untagged: never covered
        ];
        let plan = plan_global_tier(
            &trace,
            cfg(CacheEviction::Lru),
            GlobalCacheConfig {
                budget_tokens: 1024,
            },
            link(),
        )
        .unwrap();
        assert_eq!(plan.covered, vec![32, 0, 0]);
    }

    #[test]
    fn plan_respects_the_tier_budget() {
        // One-block budget: prefix 1's two blocks never both fit, so its
        // second occurrence still misses past block one... and with the
        // interleaved prefix 2 evicting in between, misses entirely.
        let trace = [
            tagged(0, 1.0, 1, 32),
            tagged(1, 2.0, 2, 32),
            tagged(2, 3.0, 1, 32),
        ];
        let plan = plan_global_tier(
            &trace,
            cfg(CacheEviction::Lru),
            GlobalCacheConfig { budget_tokens: 16 },
            link(),
        )
        .unwrap();
        assert_eq!(plan.covered, vec![0, 0, 0]);
        // A budget holding both chains covers the repeat fully.
        let wide = plan_global_tier(
            &trace,
            cfg(CacheEviction::Lru),
            GlobalCacheConfig { budget_tokens: 128 },
            link(),
        )
        .unwrap();
        assert_eq!(wide.covered, vec![0, 0, 32]);
    }

    #[test]
    fn lfu_tier_keeps_the_hot_prefix_under_pressure() {
        // Prefix 1 is hot (three holders), prefix 2 appears once in the
        // middle. A two-block budget fits only one 32-token chain: LRU
        // reclaims the older hot chain when the cold one arrives, LFU
        // keeps the hot chain and the last arrival still hits.
        let trace = [
            tagged(0, 1.0, 1, 32),
            tagged(1, 2.0, 1, 32),
            tagged(2, 3.0, 2, 32),
            tagged(3, 4.0, 1, 32),
        ];
        for (eviction, expect_final_hit) in
            [(CacheEviction::Lru, 0u32), (CacheEviction::Lfu, 32u32)]
        {
            let plan = plan_global_tier(
                &trace,
                cfg(eviction),
                GlobalCacheConfig { budget_tokens: 32 },
                link(),
            )
            .unwrap();
            assert_eq!(plan.covered[1], 32, "{eviction:?}: repeat before pressure");
            assert_eq!(
                plan.covered[3], expect_final_hit,
                "{eviction:?}: hot prefix after the cold insert"
            );
        }
    }

    #[test]
    fn tier_budget_below_one_block_is_a_typed_error() {
        let err = GlobalCacheConfig { budget_tokens: 15 }
            .validate(&cfg(CacheEviction::Lru))
            .unwrap_err();
        assert!(matches!(err, OptimusError::Serving { .. }));
        assert!(GlobalCacheConfig { budget_tokens: 16 }
            .validate(&cfg(CacheEviction::Lru))
            .is_ok());
    }

    #[test]
    fn residency_model_prefers_longest_match_and_prunes_to_budget() {
        let prefix = cfg(CacheEviction::Lru);
        let mut model = ResidencyModel::new(2, prefix, 1024);
        let a = SharedPrefix { id: 1, tokens: 48 }.block_chain(16);
        let b = SharedPrefix { id: 2, tokens: 48 }.block_chain(16);
        assert_eq!(model.best_blade(&a), None, "cold model has no affinity");
        model.admit(0, &a);
        model.admit(1, &b);
        assert_eq!(model.best_blade(&a), Some((0, 3)));
        assert_eq!(model.best_blade(&b), Some((1, 3)));
        // A shorter prefix of `a` still matches blade 0 on its two blocks.
        let short = SharedPrefix { id: 1, tokens: 32 }.block_chain(16);
        assert_eq!(model.best_blade(&short), Some((0, 2)));
        // A tight per-blade budget prunes older residency away.
        let mut tight = ResidencyModel::new(1, prefix, 48);
        tight.admit(0, &a);
        tight.admit(0, &b);
        assert_eq!(tight.best_blade(&b), Some((0, 3)));
        assert_eq!(tight.best_blade(&a), None, "evicted to budget");
    }
}
