//! Pulse-Conserving Logic (PCL) standard-cell library.
//!
//! PCL (\[13\], \[18\] of the paper) is an AC-powered SCD logic family in which
//! every digital signal travels on two physical wires (positive and negative
//! sense). Inversion is a wire swap and therefore **free** — zero JJs, zero
//! delay — which removes the inversion latency inherent to other AC-powered
//! SFQ families and makes the library map cleanly onto a conventional
//! standard-cell synthesis flow (Fig. 1f–h).
//!
//! The library here mirrors Fig. 1f/1g: primitive pulse gates (JTL, splitter,
//! AND/OR, 3-input AND/OR/MAJ) and the dual-rail composite cells built from
//! them (XOR via cross-coupled OR/AND pairs, 4-input trees via `a22`/`o22`
//! compositions, full adder via OR3/MAJ3/AND3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A primitive single-rail pulse gate.
///
/// JJ costs follow the pulse-conserving design style of \[18\]: a JTL repeater
/// stage uses 2 JJs, a splitter 3, two-input confluence logic 4 and
/// three-input logic 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PclPrimitive {
    /// Josephson transmission line segment (buffering/repeating).
    Jtl,
    /// 1→2 pulse splitter.
    Splitter,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input majority.
    Maj3,
}

impl PclPrimitive {
    /// Josephson junctions in the primitive.
    #[must_use]
    pub fn junctions(self) -> u32 {
        match self {
            Self::Jtl => 2,
            Self::Splitter => 3,
            Self::And2 | Self::Or2 => 4,
            Self::And3 | Self::Or3 | Self::Maj3 => 6,
        }
    }

    /// Number of logic inputs.
    #[must_use]
    pub fn fanin(self) -> u32 {
        match self {
            Self::Jtl | Self::Splitter => 1,
            Self::And2 | Self::Or2 => 2,
            Self::And3 | Self::Or3 | Self::Maj3 => 3,
        }
    }
}

/// A dual-rail PCL standard cell (Fig. 1g).
///
/// Each cell consumes and produces *dual-rail* signals; the JJ counts below
/// are totals across both rails. Inverting variants cost exactly the same
/// as their non-inverting counterparts because inversion is a rail swap.
///
/// ```
/// use scd_tech::pcl::PclCell;
///
/// // Free inversion is the family's signature property.
/// assert_eq!(PclCell::Inv.junctions(), 0);
/// assert_eq!(PclCell::Nand2.junctions(), PclCell::And2.junctions());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PclCell {
    /// Dual-rail buffer (JTL on both rails).
    Buf,
    /// Inverter: swap the two rails. Zero junctions, zero phases.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR (cross-coupled OR/AND pairs, Fig. 1g).
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 3-input majority.
    Maj3,
    /// Inverted 3-input majority.
    Maj3Inv,
    /// 3-input XOR (full-adder sum path: OR3/MAJ3/AND3 pairs, Fig. 1g).
    Xor3,
    /// 3-input XNOR.
    Xnor3,
    /// 4-input AND (`a22a` composition).
    And4,
    /// 4-input OR (`o22o` composition).
    Or4,
    /// 4-input NAND.
    Nand4,
    /// 4-input NOR.
    Nor4,
    /// AND-OR cell `a22o`: `(A·B) + (C·D)`.
    Ao22,
    /// OR-AND cell `o22a`: `(A+B) · (C+D)`.
    Oa22,
    /// Half adder: outputs `[sum, carry]`.
    HalfAdder,
    /// Full adder: outputs `[sum, carry]` (Fig. 1f composition).
    FullAdder,
    /// Dual-rail 1→2 splitter (fan-out repair; both outputs equal input).
    Splitter,
}

impl PclCell {
    /// Every cell in the library.
    pub const ALL: [Self; 25] = [
        Self::Buf,
        Self::Inv,
        Self::And2,
        Self::Or2,
        Self::Nand2,
        Self::Nor2,
        Self::Xor2,
        Self::Xnor2,
        Self::And3,
        Self::Or3,
        Self::Nand3,
        Self::Nor3,
        Self::Maj3,
        Self::Maj3Inv,
        Self::Xor3,
        Self::Xnor3,
        Self::And4,
        Self::Or4,
        Self::Nand4,
        Self::Nor4,
        Self::Ao22,
        Self::Oa22,
        Self::HalfAdder,
        Self::FullAdder,
        Self::Splitter,
    ];

    /// Library cell name as it would appear in a liberty file.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Buf => "BUF",
            Self::Inv => "INV",
            Self::And2 => "AND2",
            Self::Or2 => "OR2",
            Self::Nand2 => "NAND2",
            Self::Nor2 => "NOR2",
            Self::Xor2 => "XOR2",
            Self::Xnor2 => "XNOR2",
            Self::And3 => "AND3",
            Self::Or3 => "OR3",
            Self::Nand3 => "NAND3",
            Self::Nor3 => "NOR3",
            Self::Maj3 => "MAJ3",
            Self::Maj3Inv => "MAJ3I",
            Self::Xor3 => "XOR3",
            Self::Xnor3 => "XNOR3",
            Self::And4 => "AND4",
            Self::Or4 => "OR4",
            Self::Nand4 => "NAND4",
            Self::Nor4 => "NOR4",
            Self::Ao22 => "AO22",
            Self::Oa22 => "OA22",
            Self::HalfAdder => "HA",
            Self::FullAdder => "FA",
            Self::Splitter => "SPL",
        }
    }

    /// Number of dual-rail logic inputs.
    #[must_use]
    pub fn fanin(self) -> usize {
        match self {
            Self::Buf | Self::Inv | Self::Splitter => 1,
            Self::And2
            | Self::Or2
            | Self::Nand2
            | Self::Nor2
            | Self::Xor2
            | Self::Xnor2
            | Self::HalfAdder => 2,
            Self::And3
            | Self::Or3
            | Self::Nand3
            | Self::Nor3
            | Self::Maj3
            | Self::Maj3Inv
            | Self::Xor3
            | Self::Xnor3
            | Self::FullAdder => 3,
            Self::And4 | Self::Or4 | Self::Nand4 | Self::Nor4 | Self::Ao22 | Self::Oa22 => 4,
        }
    }

    /// Number of dual-rail outputs.
    #[must_use]
    pub fn fanout(self) -> usize {
        match self {
            Self::HalfAdder | Self::FullAdder | Self::Splitter => 2,
            _ => 1,
        }
    }

    /// Primitive decomposition across both rails (Fig. 1g structures).
    #[must_use]
    pub fn primitives(self) -> Vec<PclPrimitive> {
        use PclPrimitive as P;
        match self {
            Self::Buf => vec![P::Jtl, P::Jtl],
            Self::Inv => vec![],
            // pos rail AND, neg rail OR (De Morgan on the negative sense).
            Self::And2 | Self::Nand2 => vec![P::And2, P::Or2],
            Self::Or2 | Self::Nor2 => vec![P::Or2, P::And2],
            // Cross-coupled OR/AND pairs produce both XOR rails.
            Self::Xor2 | Self::Xnor2 => vec![P::Or2, P::And2, P::Or2, P::And2],
            Self::And3 | Self::Nand3 => vec![P::And3, P::Or3],
            Self::Or3 | Self::Nor3 => vec![P::Or3, P::And3],
            Self::Maj3 | Self::Maj3Inv => vec![P::Maj3, P::Maj3],
            // Full-adder sum path: OR3+MAJ3+AND3 per rail (Fig. 1g).
            Self::Xor3 | Self::Xnor3 => {
                vec![P::Or3, P::Maj3, P::And3, P::Or3, P::Maj3, P::And3]
            }
            // a22a / o22o trees: three 2-input gates per rail.
            Self::And4 | Self::Nand4 => {
                vec![P::And2, P::And2, P::And2, P::Or2, P::Or2, P::Or2]
            }
            Self::Or4 | Self::Nor4 => {
                vec![P::Or2, P::Or2, P::Or2, P::And2, P::And2, P::And2]
            }
            Self::Ao22 => vec![P::And2, P::And2, P::Or2, P::Or2, P::Or2, P::And2],
            Self::Oa22 => vec![P::Or2, P::Or2, P::And2, P::And2, P::And2, P::Or2],
            // HA: the XOR2 structure already computes AND(a,b) internally
            // on one rail, so the carry output taps it for free — a fused
            // half adder costs the same as a lone XOR2.
            Self::HalfAdder => vec![P::Or2, P::And2, P::Or2, P::And2],
            // FA: the XOR3 sum path (Fig. 1g) contains MAJ3 on both rails;
            // the carry output taps those, so FA == XOR3 in junctions.
            Self::FullAdder => vec![P::Or3, P::Maj3, P::And3, P::Or3, P::Maj3, P::And3],
            Self::Splitter => vec![P::Splitter, P::Splitter],
        }
    }

    /// Total Josephson junctions across both rails.
    #[must_use]
    pub fn junctions(self) -> u32 {
        self.primitives().iter().map(|p| p.junctions()).sum()
    }

    /// Pipeline phases (clock phases of logic depth) through the cell.
    /// Every non-trivial PCL gate is clocked; inversion is combinational
    /// rewiring and costs zero phases.
    #[must_use]
    pub fn phase_depth(self) -> u32 {
        match self {
            Self::Inv => 0,
            Self::Buf
            | Self::Splitter
            | Self::And2
            | Self::Or2
            | Self::Nand2
            | Self::Nor2
            | Self::And3
            | Self::Or3
            | Self::Nand3
            | Self::Nor3
            | Self::Maj3
            | Self::Maj3Inv => 1,
            Self::Xor2
            | Self::Xnor2
            | Self::Xor3
            | Self::Xnor3
            | Self::And4
            | Self::Or4
            | Self::Nand4
            | Self::Nor4
            | Self::Ao22
            | Self::Oa22
            | Self::HalfAdder
            | Self::FullAdder => 2,
        }
    }

    /// Whether the cell's *logical* outputs are the inverted variant (the
    /// dual-rail encoding makes this a free relabelling of the rails).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            Self::Inv
                | Self::Nand2
                | Self::Nor2
                | Self::Xnor2
                | Self::Nand3
                | Self::Nor3
                | Self::Maj3Inv
                | Self::Xnor3
                | Self::Nand4
                | Self::Nor4
        )
    }

    /// Evaluates the cell's logical function.
    ///
    /// Inputs and outputs are plain booleans; the dual-rail encoding is an
    /// implementation detail of the physical cell.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.fanin()`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.fanin(),
            "{} expects {} inputs, got {}",
            self.name(),
            self.fanin(),
            inputs.len()
        );
        let and = |xs: &[bool]| xs.iter().all(|&b| b);
        let or = |xs: &[bool]| xs.iter().any(|&b| b);
        let maj = |xs: &[bool]| xs.iter().filter(|&&b| b).count() * 2 > xs.len();
        let xor = |xs: &[bool]| xs.iter().filter(|&&b| b).count() % 2 == 1;
        match self {
            Self::Buf => vec![inputs[0]],
            Self::Inv => vec![!inputs[0]],
            Self::And2 | Self::And3 | Self::And4 => vec![and(inputs)],
            Self::Nand2 | Self::Nand3 | Self::Nand4 => vec![!and(inputs)],
            Self::Or2 | Self::Or3 | Self::Or4 => vec![or(inputs)],
            Self::Nor2 | Self::Nor3 | Self::Nor4 => vec![!or(inputs)],
            Self::Xor2 | Self::Xor3 => vec![xor(inputs)],
            Self::Xnor2 | Self::Xnor3 => vec![!xor(inputs)],
            Self::Maj3 => vec![maj(inputs)],
            Self::Maj3Inv => vec![!maj(inputs)],
            Self::Ao22 => vec![(inputs[0] && inputs[1]) || (inputs[2] && inputs[3])],
            Self::Oa22 => vec![(inputs[0] || inputs[1]) && (inputs[2] || inputs[3])],
            Self::HalfAdder => vec![xor(inputs), and(inputs)],
            Self::FullAdder => vec![xor(inputs), maj(inputs)],
            Self::Splitter => vec![inputs[0], inputs[0]],
        }
    }
}

impl fmt::Display for PclCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Summary of the whole cell library, used by reports and the EDA flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibrarySummary {
    /// One row per cell: `(name, fanin, outputs, junctions, phases)`.
    pub rows: Vec<(String, usize, usize, u32, u32)>,
}

impl LibrarySummary {
    /// Builds the summary over the full library.
    #[must_use]
    pub fn build() -> Self {
        Self {
            rows: PclCell::ALL
                .iter()
                .map(|c| {
                    (
                        c.name().to_owned(),
                        c.fanin(),
                        c.fanout(),
                        c.junctions(),
                        c.phase_depth(),
                    )
                })
                .collect(),
        }
    }
}

impl Default for LibrarySummary {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_is_free() {
        assert_eq!(PclCell::Inv.junctions(), 0);
        assert_eq!(PclCell::Inv.phase_depth(), 0);
    }

    #[test]
    fn inverting_variants_cost_the_same() {
        let pairs = [
            (PclCell::And2, PclCell::Nand2),
            (PclCell::Or2, PclCell::Nor2),
            (PclCell::Xor2, PclCell::Xnor2),
            (PclCell::And3, PclCell::Nand3),
            (PclCell::Maj3, PclCell::Maj3Inv),
            (PclCell::And4, PclCell::Nand4),
            (PclCell::Or4, PclCell::Nor4),
        ];
        for (a, b) in pairs {
            assert_eq!(a.junctions(), b.junctions(), "{a} vs {b}");
            assert_eq!(a.phase_depth(), b.phase_depth(), "{a} vs {b}");
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = PclCell::FullAdder.eval(&[a, b, c]);
                    let sum = a ^ b ^ c;
                    let carry = (a && b) || (c && (a || b));
                    assert_eq!(out, vec![sum, carry]);
                }
            }
        }
    }

    #[test]
    fn xor2_and_ao22_truth_tables() {
        assert_eq!(PclCell::Xor2.eval(&[true, false]), vec![true]);
        assert_eq!(PclCell::Xor2.eval(&[true, true]), vec![false]);
        assert_eq!(PclCell::Ao22.eval(&[true, true, false, false]), vec![true]);
        assert_eq!(
            PclCell::Oa22.eval(&[true, false, false, false]),
            vec![false]
        );
    }

    #[test]
    fn eval_matches_inverting_flag() {
        for cell in PclCell::ALL {
            if cell.fanout() != 1 {
                continue;
            }
            let n = cell.fanin();
            for bits in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let v = cell.eval(&inputs)[0];
                // Find the non-inverting partner and check the relationship.
                let partner = match cell {
                    PclCell::Nand2 => Some(PclCell::And2),
                    PclCell::Nor2 => Some(PclCell::Or2),
                    PclCell::Xnor2 => Some(PclCell::Xor2),
                    PclCell::Nand3 => Some(PclCell::And3),
                    PclCell::Nor3 => Some(PclCell::Or3),
                    PclCell::Maj3Inv => Some(PclCell::Maj3),
                    PclCell::Xnor3 => Some(PclCell::Xor3),
                    PclCell::Nand4 => Some(PclCell::And4),
                    PclCell::Nor4 => Some(PclCell::Or4),
                    _ => None,
                };
                if let Some(p) = partner {
                    assert_eq!(v, !p.eval(&inputs)[0], "{cell} vs {p} at {bits:b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let _ = PclCell::And2.eval(&[true]);
    }

    #[test]
    fn library_summary_covers_all_cells() {
        let s = LibrarySummary::build();
        assert_eq!(s.rows.len(), PclCell::ALL.len());
        assert!(s.rows.iter().any(|r| r.0 == "FA" && r.3 > 0));
    }

    #[test]
    fn junction_costs_are_ordered_sensibly() {
        assert!(PclCell::FullAdder.junctions() > PclCell::Xor2.junctions());
        assert!(PclCell::Xor2.junctions() > PclCell::And2.junctions());
        assert!(PclCell::And2.junctions() > PclCell::Inv.junctions());
    }

    #[test]
    fn splitter_duplicates_input() {
        assert_eq!(PclCell::Splitter.eval(&[true]), vec![true, true]);
        assert_eq!(PclCell::Splitter.eval(&[false]), vec![false, false]);
    }
}
