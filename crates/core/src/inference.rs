//! End-to-end LLM-inference estimation (Fig. 7 / Fig. 8).
//!
//! Inference runs a prefill pass over the prompt followed by
//! token-by-token decode with a growing KV cache. Decode is memory-bound
//! (weights and KV stream from DRAM every step), which is why the paper
//! finds inference benefits from the SCD system even more than training.

use crate::error::OptimusError;
use crate::roofline::{Placement, Roofline};
use llm_workload::kernel::CommScope;
use llm_workload::kvcache::{KvCache, KvConvention};
use llm_workload::model::{Precision, TransformerConfig};
use llm_workload::parallelism::Parallelism;
use llm_workload::taskgraph::{decode_step, prefill, TaskGraph};
use rayon::prelude::*;
use scd_arch::{Accelerator, Fabric};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inference timing report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Prompt-processing time (s).
    pub prefill_s: f64,
    /// Total decode time over all generated tokens (s).
    pub decode_s: f64,
    /// Communication share of the total (s).
    pub comm_s: f64,
    /// End-to-end latency (s).
    pub total_s: f64,
    /// Useful FLOPs per unit over the request.
    pub flops_per_unit: f64,
    /// Achieved throughput per unit (FLOP/s).
    pub achieved_flops_per_unit: f64,
    /// Mean time per generated token (s).
    pub per_token_s: f64,
    /// KV-cache footprint at the end of generation (bytes, whole system).
    pub kv_cache_bytes: f64,
}

impl InferenceReport {
    /// End-to-end latency in seconds.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.total_s
    }

    /// Achieved PFLOP/s per unit.
    #[must_use]
    pub fn pflops_per_unit(&self) -> f64 {
        self.achieved_flops_per_unit / 1e15
    }
}

impl fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {:.3} s (prefill {:.3} + decode {:.3}); {:.3} PFLOP/s/unit",
            self.total_s,
            self.prefill_s,
            self.decode_s,
            self.pflops_per_unit()
        )
    }
}

/// An inference request shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestShape {
    /// Concurrent sequences.
    pub batch: u32,
    /// Prompt tokens (the paper's I/O 200/200 default).
    pub input_tokens: u32,
    /// Generated tokens.
    pub output_tokens: u32,
}

impl RequestShape {
    /// The paper's I/O 200/200 shape at a given batch.
    #[must_use]
    pub fn paper_io(batch: u32) -> Self {
        Self {
            batch,
            input_tokens: 200,
            output_tokens: 200,
        }
    }
}

/// Inference estimator for one accelerator type + fabric.
#[derive(Debug, Clone)]
pub struct InferenceEstimator {
    accel: Accelerator,
    fabric: Fabric,
    precision: Precision,
    placement: Placement,
}

impl InferenceEstimator {
    /// Creates an estimator with bf16 precision and DRAM KV placement.
    #[must_use]
    pub fn new(accel: Accelerator, fabric: Fabric) -> Self {
        Self {
            accel,
            fabric,
            precision: Precision::Bf16,
            placement: Placement::dram(),
        }
    }

    /// Overrides traffic placement (the §VI KV-in-L2 study).
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the working precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The accelerator under analysis.
    #[must_use]
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// The working precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Times one prefill pass over `input_tokens` prompt tokens at the
    /// given batch: compute plus communication, in seconds. This is the
    /// admission cost a continuous-batching scheduler pays when a request
    /// joins the running batch.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError`] for invalid model/parallelism/shape
    /// combinations.
    pub fn prefill_time(
        &self,
        model: &TransformerConfig,
        par: &Parallelism,
        batch: u32,
        input_tokens: u32,
    ) -> Result<f64, OptimusError> {
        self.accel.validate()?;
        let g = prefill(model, par, batch, input_tokens, self.precision)?;
        let (c, m) = self.graph_time(&g, par.tp() as usize);
        Ok(c + m)
    }

    /// Times one decode iteration for `batch` concurrent sequences at
    /// cache length `kv_len`: compute plus communication, in seconds.
    /// This is the per-iteration cost a continuous-batching scheduler
    /// pays for the running batch.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError`] for invalid model/parallelism/shape
    /// combinations.
    pub fn decode_step_time(
        &self,
        model: &TransformerConfig,
        par: &Parallelism,
        batch: u32,
        kv_len: u32,
    ) -> Result<f64, OptimusError> {
        self.accel.validate()?;
        let g = decode_step(model, par, batch, kv_len, self.precision)?;
        let (c, m) = self.graph_time(&g, par.tp() as usize);
        Ok(c + m)
    }

    fn graph_time(&self, graph: &TaskGraph, tp: usize) -> (f64, f64) {
        let roofline = Roofline::new(&self.accel).with_placement(self.placement);
        let compute: f64 = graph
            .kernels
            .iter()
            .map(|k| roofline.time_all(k).seconds())
            .sum();
        let comm: f64 = graph
            .comms
            .iter()
            .map(|c| {
                let t = match c.scope {
                    CommScope::TensorParallel => self.fabric.all_reduce_time(c.bytes, tp),
                    CommScope::DataParallel => self.fabric.all_reduce_time(c.bytes, tp),
                    CommScope::PipelineNeighbor => self.fabric.p2p_time(c.bytes),
                };
                t.seconds() * c.invocations
            })
            .sum();
        (compute, comm)
    }

    /// Times the decode step at KV length `input_tokens + t`, returning
    /// (compute s, communication s, FLOPs).
    fn decode_token(
        &self,
        model: &TransformerConfig,
        par: &Parallelism,
        shape: RequestShape,
        tp: usize,
        t: u32,
    ) -> Result<(f64, f64, f64), OptimusError> {
        let kv_len = shape.input_tokens + t;
        let g = decode_step(model, par, shape.batch, kv_len, self.precision)?;
        let (c, m) = self.graph_time(&g, tp);
        Ok((c, m, g.total_flops()))
    }

    /// Assembles the report from prefill timings and the per-token decode
    /// timings, folding tokens in order. Shared by the parallel and serial
    /// estimation paths so the two can only differ in how the per-token
    /// values were produced.
    fn compose_report(
        &self,
        model: &TransformerConfig,
        shape: RequestShape,
        prefill_comp: f64,
        prefill_comm: f64,
        prefill_flops: f64,
        per_token: impl IntoIterator<Item = Result<(f64, f64, f64), OptimusError>>,
    ) -> Result<InferenceReport, OptimusError> {
        let mut flops = prefill_flops;
        let mut decode_comp = 0.0;
        let mut decode_comm = 0.0;
        for timed in per_token {
            let (c, m, fl) = timed?;
            decode_comp += c;
            decode_comm += m;
            flops += fl;
        }

        let prefill_s = prefill_comp + prefill_comm;
        let decode_s = decode_comp + decode_comm;
        let total_s = prefill_s + decode_s;
        let kv = KvCache {
            batch: shape.batch,
            seq_len: shape.input_tokens + shape.output_tokens,
            precision: self.precision,
        };
        // Reported in the paper's MHA convention so the Fig. 8b numbers
        // reproduce; physical capacity accounting uses KvConvention::Gqa
        // (see `serving`).
        let kv_cache_bytes = kv.bytes(model, KvConvention::PaperMha);
        Ok(InferenceReport {
            prefill_s,
            decode_s,
            comm_s: prefill_comm + decode_comm,
            total_s,
            flops_per_unit: flops,
            achieved_flops_per_unit: flops / total_s,
            per_token_s: decode_s / f64::from(shape.output_tokens.max(1)),
            kv_cache_bytes,
        })
    }

    /// Estimates a full request (prefill + decode). Each generated token's
    /// task graph is built and timed on a separate rayon task — the KV
    /// length, and therefore the graph, differs per token — and the
    /// per-token times are folded in token order on the calling thread, so
    /// the result is bit-identical to [`Self::estimate_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError`] for invalid model/parallelism combinations.
    pub fn estimate(
        &self,
        model: &TransformerConfig,
        par: &Parallelism,
        shape: RequestShape,
    ) -> Result<InferenceReport, OptimusError> {
        self.accel.validate()?;
        let tp = par.tp() as usize;

        let prefill_graph = prefill(model, par, shape.batch, shape.input_tokens, self.precision)?;
        let (prefill_comp, prefill_comm) = self.graph_time(&prefill_graph, tp);

        let per_token: Vec<Result<(f64, f64, f64), OptimusError>> = (0..shape.output_tokens)
            .into_par_iter()
            .map(|t| self.decode_token(model, par, shape, tp, t))
            .collect();
        self.compose_report(
            model,
            shape,
            prefill_comp,
            prefill_comm,
            prefill_graph.total_flops(),
            per_token,
        )
    }

    /// Serial reference implementation of [`Self::estimate`], kept as the
    /// ground truth for the rayon-equivalence test in CI.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError`] for invalid model/parallelism combinations.
    pub fn estimate_serial(
        &self,
        model: &TransformerConfig,
        par: &Parallelism,
        shape: RequestShape,
    ) -> Result<InferenceReport, OptimusError> {
        self.accel.validate()?;
        let tp = par.tp() as usize;

        let prefill_graph = prefill(model, par, shape.batch, shape.input_tokens, self.precision)?;
        let (prefill_comp, prefill_comm) = self.graph_time(&prefill_graph, tp);

        let per_token =
            (0..shape.output_tokens).map(|t| self.decode_token(model, par, shape, tp, t));
        self.compose_report(
            model,
            shape,
            prefill_comp,
            prefill_comm,
            prefill_graph.total_flops(),
            per_token,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::model::ModelZoo;
    use scd_arch::{Blade, GpuSystem};
    use scd_tech::units::{Bandwidth, TimeInterval};

    fn spu_estimator(bw_tbps: f64, lat_ns: f64) -> InferenceEstimator {
        let blade = Blade::baseline();
        let accel = blade
            .accelerator()
            .with_dram_bandwidth(Bandwidth::from_tbps(bw_tbps))
            .with_dram_latency(TimeInterval::from_ns(lat_ns));
        InferenceEstimator::new(accel, blade.interconnect())
    }

    fn gpu_estimator() -> InferenceEstimator {
        let gpus = GpuSystem::h100_cluster(64);
        InferenceEstimator::new(gpus.accelerator().clone(), gpus.fabric().clone())
    }

    #[test]
    fn fig7_bandwidth_sweep_shape() {
        // Llama-405B, B=8, I/O 200/200, TP=64, 30 ns: latency falls
        // steeply from 0.5 TB/s then saturates beyond ~8 TB/s.
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let shape = RequestShape::paper_io(8);
        let mut latencies = Vec::new();
        for bw in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let r = spu_estimator(bw, 30.0)
                .estimate(&model, &par, shape)
                .unwrap();
            latencies.push(r.latency_s());
        }
        for w in latencies.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "latency must fall with bandwidth");
        }
        let overall = latencies[0] / latencies[6];
        assert!(
            (8.0..30.0).contains(&overall),
            "paper sees ~17× from 0.5→32 TB/s, got {overall:.1}"
        );
        let saturation = latencies[4] / latencies[6];
        assert!(
            saturation < 1.35,
            "should saturate beyond 8 TB/s, got {saturation:.2}"
        );
    }

    #[test]
    fn fig7a_latency_sensitivity() {
        // Throughput falls steadily as DRAM latency goes 10 → 200 ns at
        // 16 TB/s.
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let shape = RequestShape::paper_io(8);
        let mut last = f64::INFINITY;
        for lat in [10.0, 30.0, 50.0, 100.0, 200.0] {
            let r = spu_estimator(16.0, lat)
                .estimate(&model, &par, shape)
                .unwrap();
            let p = r.pflops_per_unit();
            assert!(p < last, "throughput must fall with latency");
            last = p;
        }
    }

    #[test]
    fn fig7b_batch_tradeoff() {
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let mut last_throughput = 0.0;
        let mut last_latency = 0.0;
        for b in [4, 8, 16, 32, 64, 128] {
            let r = spu_estimator(16.0, 30.0)
                .estimate(&model, &par, RequestShape::paper_io(b))
                .unwrap();
            assert!(
                r.pflops_per_unit() > last_throughput,
                "throughput grows with batch"
            );
            assert!(r.latency_s() > last_latency, "latency grows with batch");
            last_throughput = r.pflops_per_unit();
            last_latency = r.latency_s();
        }
    }

    #[test]
    fn fig8a_model_speedups() {
        // Paper: 8.9×–10.6× vs 64 H100s at 16 TB/s, B=8, I/O 200/200.
        // MoE-132B has 48 heads, so its 64 units split TP=16 × PP=4.
        let shape = RequestShape::paper_io(8);
        let cases = [
            (ModelZoo::moe_132b(), Parallelism::new(16, 4, 1).unwrap()),
            (ModelZoo::llama_70b(), Parallelism::pure_tp(64).unwrap()),
            (ModelZoo::llama_405b(), Parallelism::pure_tp(64).unwrap()),
        ];
        for (model, par) in cases {
            let spu = spu_estimator(16.0, 30.0)
                .estimate(&model, &par, shape)
                .unwrap();
            let gpu = gpu_estimator().estimate(&model, &par, shape).unwrap();
            let speedup = gpu.latency_s() / spu.latency_s();
            assert!(
                (4.0..40.0).contains(&speedup),
                "{}: inference speed-up {speedup:.1} outside band",
                model.name
            );
        }
    }

    #[test]
    fn inference_speedup_exceeds_training_speedup() {
        // The paper's key takeaway: inference benefits more than training.
        let model = ModelZoo::gpt3_76b();
        let train_par = Parallelism::new(8, 8, 1).unwrap();
        // 80 heads: 64-unit inference splits TP=16 × PP=4.
        let inf_par = Parallelism::new(16, 4, 1).unwrap();
        let shape = RequestShape::paper_io(8);

        let spu_inf = spu_estimator(16.0, 30.0)
            .estimate(&model, &inf_par, shape)
            .unwrap();
        let gpu_inf = gpu_estimator().estimate(&model, &inf_par, shape).unwrap();
        let inf_speedup = gpu_inf.latency_s() / spu_inf.latency_s();

        let blade = Blade::baseline();
        let spu_train = crate::training::TrainingEstimator::new(
            blade
                .accelerator()
                .with_dram_bandwidth(Bandwidth::from_tbps(16.0)),
            blade.interconnect(),
        )
        .estimate(&model, &train_par, 64)
        .unwrap();
        let gpus = GpuSystem::h100_cluster(64);
        let gpu_train = crate::training::TrainingEstimator::new(
            gpus.accelerator().clone(),
            gpus.fabric().clone(),
        )
        .estimate(&model, &train_par, 64)
        .unwrap();
        let train_speedup = gpu_train.total_s / spu_train.total_s;
        assert!(
            inf_speedup > train_speedup,
            "inference {inf_speedup:.1}× should exceed training {train_speedup:.1}×"
        );
    }

    #[test]
    fn kv_cache_reported() {
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let r = spu_estimator(16.0, 30.0)
            .estimate(&model, &par, RequestShape::paper_io(8))
            .unwrap();
        // 2·126·8·400·16384·2 ≈ 26.4 GB at the generated length.
        assert!((r.kv_cache_bytes / 1e9 - 26.4).abs() < 1.0);
    }
}
