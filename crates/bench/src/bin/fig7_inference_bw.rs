//! Experiment F7: inference latency vs DRAM bandwidth.
fn main() -> Result<(), optimus::OptimusError> {
    let pts = scd_bench::inference_experiments::fig7_sweep()?;
    print!("{}", scd_bench::inference_experiments::render_fig7(&pts));
    Ok(())
}
