//! Experiment F6: training time breakdown, GPU vs SPU (+ inset).
fn main() -> Result<(), optimus::OptimusError> {
    let rows = scd_bench::training_experiments::fig6_rows()?;
    print!("{}", scd_bench::training_experiments::render_fig6(&rows));
    Ok(())
}
