//! Test-case configuration, errors, and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Per-`proptest!` block configuration (stand-in for
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// Real proptest defaults to 256 cases; 64 keeps the hermetic suite
    /// fast while still exercising each property broadly.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given explanation.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG used to sample strategies. Seeded from the test's
/// fully qualified name so every test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test (FNV-1a over the name).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }
}
