//! Scheduler policies: the admission-order / eviction-victim seam of the
//! serving engine.
//!
//! PR 2 hard-coded FCFS admission with youngest-first eviction inside the
//! replay loop. The [`SchedulerPolicy`] trait lifts both decisions out of
//! the engine: a policy reorders the waiting queue each iteration (only
//! requests that have arrived may move ahead) and picks the preemption
//! victim when KV growth overflows capacity. The engine still owns the
//! mechanics — capacity math, head-of-line blocking, recompute-style
//! restarts — so policies stay small and easily conformance-tested.

use super::engine::RunningSeq;
use super::traces::RequestSpec;
use std::collections::VecDeque;
use std::fmt;

/// How the event-driven core may maintain a policy's queue order
/// *incrementally* instead of re-running
/// [`SchedulerPolicy::order_queue`] over the whole backlog every
/// iteration. Each contract is a promise about what `order_queue`
/// computes; the engine exploits the strongest promise a policy makes
/// and falls back to per-iteration re-sorting otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingContract {
    /// `order_queue` is a no-op: the queue stays in arrival order and
    /// the engine skips the call entirely on the hot path.
    Fcfs,
    /// `order_queue(clock, ..)` is exactly a *stable* sort of the
    /// arrived prefix by [`SchedulerPolicy::order_key`], and that key
    /// does not depend on the clock. The engine then keeps arrived
    /// requests in an ordered set keyed by `(order_key, insertion seq)`
    /// — new arrivals insert after key-equals (stable-sort semantics),
    /// preemption victims insert before key-equals (they re-enter at
    /// the queue front and a stable sort keeps them ahead of ties) —
    /// which is provably the same sequence of heads the repeated sort
    /// would produce.
    StaticKey,
    /// The order depends on the clock (e.g. aging promotions), so the
    /// engine re-runs `order_queue` before every admission-capable
    /// iteration. Policies under this contract must additionally be
    /// *history-independent*: the queue order after `order_queue(c2)`
    /// must be a pure function of `(c2, queue contents)` regardless of
    /// which earlier clocks `c1 <= c2` the queue was sorted at — i.e.
    /// `order_queue(c2) ∘ order_queue(c1) ≡ order_queue(c2)` — because
    /// the event-driven core skips the call for iterations where no
    /// admission can occur (batch full, or nothing arrived). A stable
    /// sort by a key that is monotone in the clock (like the max-wait
    /// guard's overdue promotion) satisfies this.
    ClockDependent,
}

/// Admission + eviction strategy for the serving engine.
///
/// Implementations must keep these contracts the engine relies on:
///
/// * [`order_queue`](Self::order_queue) may only move *arrived* requests
///   (`arrival_s <= clock`) ahead of others; not-yet-arrived requests keep
///   their relative (arrival) order behind the arrived ones. In
///   particular, a queue holding only not-yet-arrived requests must come
///   back unchanged.
/// * [`evict_victim`](Self::evict_victim) returns a valid index into
///   `running` (the engine calls it only when `running.len() > 1`).
/// * [`ordering`](Self::ordering) must describe `order_queue` truthfully
///   — the event-driven core replays are bit-compared against the
///   per-step loops under that promise (see [`OrderingContract`]).
pub trait SchedulerPolicy: fmt::Debug + Send + Sync {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// The incremental-order contract [`order_queue`](Self::order_queue)
    /// satisfies. The conservative default re-sorts every
    /// admission-capable iteration; override to let the event-driven
    /// core maintain the order incrementally (FCFS additionally skips
    /// the `order_queue` call on the hot path entirely).
    fn ordering(&self) -> OrderingContract {
        OrderingContract::ClockDependent
    }

    /// The clock-independent sort key backing
    /// [`OrderingContract::StaticKey`]: smaller keys run first, ties are
    /// FCFS. Must totally agree with `order_queue`'s sort. Unused under
    /// the other contracts.
    fn order_key(&self, request: &RequestSpec) -> u64 {
        let _ = request;
        0
    }

    /// Reorders the waiting queue before this iteration's admission scan.
    /// The engine admits from the front until a request fails to fit
    /// (head-of-line blocking), so the front of the queue is the policy's
    /// highest-priority choice. Default: keep FCFS (arrival) order.
    fn order_queue(&self, clock: f64, trace: &[RequestSpec], queue: &mut VecDeque<usize>) {
        let _ = (clock, trace, queue);
    }

    /// Picks the preemption victim among the running batch when KV growth
    /// overflows capacity. Default: the youngest sequence (the one that
    /// has the least recompute work to throw away — vLLM's recompute
    /// preemption order).
    fn evict_victim(&self, trace: &[RequestSpec], running: &[RunningSeq]) -> usize {
        let _ = trace;
        running.len() - 1
    }
}

/// Sorts the arrived prefix of the queue by `key`, leaving not-yet-arrived
/// requests behind in their existing (arrival) order. Stable, so ties keep
/// FCFS order.
fn sort_arrived_by<K: Ord>(
    clock: f64,
    trace: &[RequestSpec],
    queue: &mut VecDeque<usize>,
    key: impl Fn(&RequestSpec) -> K,
) {
    let (mut arrived, future): (Vec<usize>, Vec<usize>) = queue
        .iter()
        .copied()
        .partition(|&i| trace[i].arrival_s <= clock);
    arrived.sort_by_key(|&i| key(&trace[i]));
    queue.clear();
    queue.extend(arrived);
    queue.extend(future);
}

/// First-come first-served admission with youngest-first eviction: PR 2's
/// behavior, and the engine's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsPolicy;

impl SchedulerPolicy for FcfsPolicy {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn ordering(&self) -> OrderingContract {
        OrderingContract::Fcfs
    }
}

/// Shortest-job-first admission: among arrived requests, the smallest
/// service demand goes first. Decode dominates service time (every
/// generated token streams the full weights, while the whole prompt is
/// prefetched in one pass), so jobs order by output length first, prompt
/// length as the tie-break. Improves mean latency under mixed lengths at
/// the cost of starving long requests — pair with [`MaxWaitGuardPolicy`]
/// when tails matter.
#[derive(Debug, Clone, Copy, Default)]
pub struct SjfPolicy;

/// SJF ordering key: decode iterations dominate, prefill breaks ties.
fn service_key(r: &RequestSpec) -> (u32, u32) {
    (r.output_tokens, r.prompt_tokens)
}

impl SchedulerPolicy for SjfPolicy {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn ordering(&self) -> OrderingContract {
        OrderingContract::StaticKey
    }

    fn order_key(&self, request: &RequestSpec) -> u64 {
        // Packs (output, prompt) lexicographically: same total order as
        // `service_key`, so the incremental ordered set agrees with the
        // stable sort below.
        let (out, prompt) = service_key(request);
        (u64::from(out) << 32) | u64::from(prompt)
    }

    fn order_queue(&self, clock: f64, trace: &[RequestSpec], queue: &mut VecDeque<usize>) {
        sort_arrived_by(clock, trace, queue, service_key);
    }
}

/// SJF admission with an aging guard: any arrived request that has waited
/// longer than `max_wait_s` is promoted to the front (FCFS among the
/// promoted), bounding the starvation SJF would otherwise inflict on long
/// requests.
#[derive(Debug, Clone, Copy)]
pub struct MaxWaitGuardPolicy {
    /// Waiting-time bound (s) beyond which a request jumps the SJF order.
    pub max_wait_s: f64,
}

impl MaxWaitGuardPolicy {
    /// Creates a guard promoting requests that waited longer than
    /// `max_wait_s`.
    #[must_use]
    pub fn new(max_wait_s: f64) -> Self {
        Self { max_wait_s }
    }
}

impl SchedulerPolicy for MaxWaitGuardPolicy {
    fn name(&self) -> &'static str {
        "sjf+max-wait-guard"
    }

    fn order_queue(&self, clock: f64, trace: &[RequestSpec], queue: &mut VecDeque<usize>) {
        // Monotone u64 image of f64's total order (sign-flip trick), so
        // overdue requests sort FCFS even for negative (relative)
        // arrival timestamps.
        let total_order = |x: f64| -> u64 {
            let bits = x.to_bits();
            if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            }
        };
        sort_arrived_by(clock, trace, queue, |r| {
            if clock - r.arrival_s > self.max_wait_s {
                // Overdue: ahead of everything, FCFS among themselves.
                (0u8, total_order(r.arrival_s), 0u64)
            } else {
                let (out, prompt) = service_key(r);
                (1u8, u64::from(out), u64::from(prompt))
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u32, arrival_s: f64, prompt: u32, output: u32) -> RequestSpec {
        RequestSpec::new(id, arrival_s, prompt, output)
    }

    #[test]
    fn fcfs_keeps_queue_untouched() {
        let trace = [req(0, 0.0, 10, 10), req(1, 0.5, 5, 5), req(2, 9.0, 1, 1)];
        let mut q: VecDeque<usize> = (0..3).collect();
        FcfsPolicy.order_queue(1.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([0, 1, 2]));
        let running = [RunningSeq::admitted(0, 10), RunningSeq::admitted(1, 5)];
        assert_eq!(FcfsPolicy.evict_victim(&trace, &running), 1);
    }

    #[test]
    fn sjf_reorders_only_arrived() {
        let trace = [
            req(0, 0.0, 100, 100),
            req(1, 0.5, 5, 5),
            req(2, 9.0, 1, 1), // shortest, but not yet arrived
        ];
        let mut q: VecDeque<usize> = (0..3).collect();
        SjfPolicy.order_queue(1.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([1, 0, 2]), "future request stays last");
        SjfPolicy.order_queue(10.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([2, 1, 0]));
    }

    #[test]
    fn max_wait_guard_promotes_overdue() {
        let trace = [
            req(0, 0.0, 100, 100), // long, waited 5 s
            req(1, 4.5, 5, 5),     // short, fresh
        ];
        let mut q: VecDeque<usize> = (0..2).collect();
        // Guard of 10 s: nothing overdue, SJF order wins.
        MaxWaitGuardPolicy::new(10.0).order_queue(5.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([1, 0]));
        // Guard of 2 s: the long request is overdue and jumps ahead.
        MaxWaitGuardPolicy::new(2.0).order_queue(5.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([0, 1]));
        assert!(MaxWaitGuardPolicy::new(2.0).name().contains("guard"));
    }

    #[test]
    fn ordering_contracts_match_order_queue_behavior() {
        assert_eq!(FcfsPolicy.ordering(), OrderingContract::Fcfs);
        assert_eq!(SjfPolicy.ordering(), OrderingContract::StaticKey);
        assert_eq!(
            MaxWaitGuardPolicy::new(1.0).ordering(),
            OrderingContract::ClockDependent
        );
        // SJF's packed key must agree with its stable-sort key on both
        // components, including the prompt tie-break.
        let a = req(0, 0.0, 7, 3);
        let b = req(1, 0.0, 9, 3);
        let c = req(2, 0.0, 7, 4);
        assert!(SjfPolicy.order_key(&a) < SjfPolicy.order_key(&b));
        assert!(SjfPolicy.order_key(&a) < SjfPolicy.order_key(&c));
        // Output dominates: b's shorter decode outranks c's shorter prompt.
        assert!(SjfPolicy.order_key(&b) < SjfPolicy.order_key(&c));
    }

    #[test]
    fn max_wait_guard_keeps_fcfs_for_negative_arrival_timestamps() {
        // Relative (negative) timestamps are legal trace inputs; overdue
        // ordering must stay FCFS across the sign boundary.
        let trace = [req(0, -1.0, 9, 9), req(1, -2.0, 9, 9), req(2, 0.5, 9, 9)];
        let mut q: VecDeque<usize> = (0..3).collect();
        // All three overdue at clock 5 with a 1 s guard: arrival order.
        MaxWaitGuardPolicy::new(1.0).order_queue(5.0, &trace, &mut q);
        assert_eq!(q, VecDeque::from([1, 0, 2]));
    }
}
