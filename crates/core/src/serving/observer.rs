//! The [`SimObserver`] seam: per-iteration engine callbacks so benches,
//! tests and tools can watch a replay — admissions, evictions, prefill
//! chunk dispatches, prefill→decode handoffs, completions and raw steps —
//! without reaching into engine internals.
//!
//! Observers are strictly read-only: the engine never lets a callback
//! perturb its float stream, so an observed replay is bit-identical to an
//! unobserved one (the observed paths run the serial cost table; see
//! [`CompiledScenario::run_observed`](super::scenario::CompiledScenario::run_observed)).

use super::traces::RequestSpec;

/// Read-only callbacks fired by the serving engine as a replay advances.
/// Every method has a no-op default, so observers implement only what
/// they watch. `blade` is the blade index within the scenario's topology
/// (0 for single-blade replays); `clock_s` is that blade's clock at the
/// instant the event took effect.
pub trait SimObserver {
    /// `request` joined blade `blade`'s running batch (clock is the
    /// iteration start).
    fn on_admission(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        let _ = (blade, clock_s, request);
    }

    /// `request` was preempted off blade `blade`, discarding
    /// `wasted_tokens` generated tokens (recompute-style restart).
    fn on_eviction(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, wasted_tokens: u32) {
        let _ = (blade, clock_s, request, wasted_tokens);
    }

    /// A chunked-prefill slice of `chunk_tokens` tokens of `request` was
    /// dispatched into blade `blade`'s iteration.
    fn on_chunk(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, chunk_tokens: u32) {
        let _ = (blade, clock_s, request, chunk_tokens);
    }

    /// Blade `blade` (a prefill blade) finished prefilling `request` and
    /// started streaming its KV to the decode pool; the transfer occupies
    /// the fabric for `transfer_s` seconds.
    fn on_handoff(&mut self, blade: u32, clock_s: f64, request: &RequestSpec, transfer_s: f64) {
        let _ = (blade, clock_s, request, transfer_s);
    }

    /// `request` emitted its final token on blade `blade`.
    fn on_completion(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        let _ = (blade, clock_s, request);
    }

    /// `request`'s shared prefix hit blade `blade`'s prefix cache:
    /// `cached_tokens` prefill tokens were skipped because their KV was
    /// already resident.
    fn on_cache_hit(
        &mut self,
        blade: u32,
        clock_s: f64,
        request: &RequestSpec,
        cached_tokens: u32,
    ) {
        let _ = (blade, clock_s, request, cached_tokens);
    }

    /// `request` carried a shared prefix but found none of its blocks
    /// cached on blade `blade` (its blocks are inserted for the next
    /// arrival).
    fn on_cache_miss(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        let _ = (blade, clock_s, request);
    }

    /// Blade `blade` reclaimed one unreferenced shared block of
    /// `block_tokens` capacity tokens (LRU eviction under pressure).
    fn on_cache_evict(&mut self, blade: u32, clock_s: f64, block_tokens: u32) {
        let _ = (blade, clock_s, block_tokens);
    }

    /// The global cache tier held `remote_tokens` more of `request`'s
    /// prefix than blade `blade`'s own cache: streaming that KV span over
    /// the interconnect (`transfer_s` seconds) was raced against
    /// recomputing it locally, and `streamed` records which won (see
    /// [`super::coord`]). Fires only when a scenario enables the tier.
    fn on_remote_cache_hit(
        &mut self,
        blade: u32,
        clock_s: f64,
        request: &RequestSpec,
        remote_tokens: u32,
        transfer_s: f64,
        streamed: bool,
    ) {
        let _ = (blade, clock_s, request, remote_tokens, transfer_s, streamed);
    }

    /// Blade `blade` finished one engine iteration of `step_s` seconds
    /// with `decoding` sequences in the decode batch (clock is the
    /// iteration end).
    fn on_step(&mut self, blade: u32, clock_s: f64, step_s: f64, decoding: u32) {
        let _ = (blade, clock_s, step_s, decoding);
    }

    /// The admission-control gate on blade `blade` dropped `request` at
    /// the instant it would otherwise have been admitted (best-effort
    /// load shedding while the strict class is below its attainment
    /// floor). The request never runs.
    fn on_shed(&mut self, blade: u32, clock_s: f64, request: &RequestSpec) {
        let _ = (blade, clock_s, request);
    }

    /// The cluster autoscaler changed the active blade count from
    /// `active_from` to `active_to` at `clock_s` (a scale-up's new blade
    /// starts serving after its warm-up delay).
    fn on_scale(&mut self, clock_s: f64, active_from: u32, active_to: u32) {
        let _ = (clock_s, active_from, active_to);
    }

    /// Whether this observer ignores every callback. The event-driven
    /// core skips per-iteration dispatch inside batched decode stretches
    /// — including the cluster-wide leapfrog's replayed rounds — for
    /// passive observers; real observers (returning `false`, the
    /// default) receive the identical event stream on both cores, one
    /// [`Self::on_step`] per decode round in true global order, with
    /// [`Self::on_shed`] and [`Self::on_scale`] interleaved exactly
    /// where the per-step loop would fire them (stretches are truncated
    /// at every control-plane decision instant).
    fn is_passive(&self) -> bool {
        false
    }
}

/// The do-nothing observer the unobserved replay paths run with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    fn is_passive(&self) -> bool {
        true
    }
}

/// An observer that counts every event class — the drop-in replacement
/// for the engine-internals peeking that benches and tests used to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// Admissions seen (re-admissions after eviction count again).
    pub admissions: u64,
    /// Evictions seen.
    pub evictions: u64,
    /// Prefill chunks dispatched.
    pub chunks: u64,
    /// Prefill→decode handoffs.
    pub handoffs: u64,
    /// Request completions.
    pub completions: u64,
    /// Engine iterations.
    pub steps: u64,
    /// Prefix-cache hits.
    pub cache_hits: u64,
    /// Prefix-cache misses.
    pub cache_misses: u64,
    /// Shared blocks reclaimed by LRU eviction.
    pub cache_evictions: u64,
    /// Global-tier hits raced against local recompute.
    pub remote_hits: u64,
    /// Requests dropped by the admission-control gate.
    pub sheds: u64,
    /// Autoscaler blade-count changes.
    pub scale_events: u64,
}

impl SimObserver for CountingObserver {
    fn on_admission(&mut self, _: u32, _: f64, _: &RequestSpec) {
        self.admissions += 1;
    }

    fn on_eviction(&mut self, _: u32, _: f64, _: &RequestSpec, _: u32) {
        self.evictions += 1;
    }

    fn on_chunk(&mut self, _: u32, _: f64, _: &RequestSpec, _: u32) {
        self.chunks += 1;
    }

    fn on_handoff(&mut self, _: u32, _: f64, _: &RequestSpec, _: f64) {
        self.handoffs += 1;
    }

    fn on_completion(&mut self, _: u32, _: f64, _: &RequestSpec) {
        self.completions += 1;
    }

    fn on_step(&mut self, _: u32, _: f64, _: f64, _: u32) {
        self.steps += 1;
    }

    fn on_cache_hit(&mut self, _: u32, _: f64, _: &RequestSpec, _: u32) {
        self.cache_hits += 1;
    }

    fn on_cache_miss(&mut self, _: u32, _: f64, _: &RequestSpec) {
        self.cache_misses += 1;
    }

    fn on_cache_evict(&mut self, _: u32, _: f64, _: u32) {
        self.cache_evictions += 1;
    }

    fn on_remote_cache_hit(&mut self, _: u32, _: f64, _: &RequestSpec, _: u32, _: f64, _: bool) {
        self.remote_hits += 1;
    }

    fn on_shed(&mut self, _: u32, _: f64, _: &RequestSpec) {
        self.sheds += 1;
    }

    fn on_scale(&mut self, _: f64, _: u32, _: u32) {
        self.scale_events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_no_ops_and_counts_accumulate() {
        let r = RequestSpec::new(0, 0.0, 8, 4);
        let mut noop = NoopObserver;
        noop.on_admission(0, 0.0, &r);
        noop.on_step(0, 1.0, 1.0, 1);

        let mut c = CountingObserver::default();
        c.on_admission(0, 0.0, &r);
        c.on_eviction(0, 0.5, &r, 2);
        c.on_chunk(0, 0.5, &r, 64);
        c.on_handoff(0, 0.6, &r, 1e-6);
        c.on_completion(0, 1.0, &r);
        c.on_step(0, 1.0, 0.4, 3);
        c.on_cache_hit(0, 1.1, &r, 32);
        c.on_cache_miss(0, 1.2, &r);
        c.on_cache_evict(0, 1.3, 16);
        c.on_remote_cache_hit(0, 1.35, &r, 32, 1e-6, true);
        c.on_shed(0, 1.4, &r);
        c.on_scale(1.5, 1, 2);
        assert_eq!(
            c,
            CountingObserver {
                admissions: 1,
                evictions: 1,
                chunks: 1,
                handoffs: 1,
                completions: 1,
                steps: 1,
                cache_hits: 1,
                cache_misses: 1,
                cache_evictions: 1,
                remote_hits: 1,
                sheds: 1,
                scale_events: 1,
            }
        );
    }
}
