//! Latency-aware transfer-time model.
//!
//! The paper observes two latency effects that pure `bytes / bandwidth`
//! models miss:
//!
//! 1. Fig. 7: inference scaling "tend\[s\] to saturate beyond 8 TB/s since we
//!    start hitting the DRAM latency bound limit" (at 30 ns);
//! 2. Fig. 7 inset (a): at a fixed 16 TB/s, throughput declines steadily as
//!    DRAM latency grows from 10 ns to 200 ns.
//!
//! Both fall out of Little's law applied to a memory interface with a
//! bounded window of outstanding burst requests: with `w` outstanding
//! requests of `b` bytes and round-trip latency `lat`, the sustainable
//! request throughput is `w·b / lat`, so a transfer of `V` bytes takes
//!
//! ```text
//! t = lat + V / min(bw, w·b / lat)
//! ```
//!
//! With the cryo-DRAM defaults (4 KiB bursts, 64 outstanding → 256 KiB
//! window) the 30 ns latency caps effective bandwidth at ≈ 8.7 TB/s —
//! exactly the paper's observed saturation point.

use scd_tech::units::{Bandwidth, TimeInterval};
use serde::{Deserialize, Serialize};

/// Burst/window parameters for a memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Bytes per burst request.
    pub burst_bytes: u64,
    /// Maximum outstanding burst requests (window size).
    pub max_outstanding: u32,
}

impl TransferModel {
    /// Cryo-DRAM access over the 4K↔77K datalink: 4 KiB bursts with a
    /// 64-deep request window (256 KiB in flight). At 30 ns this caps
    /// effective bandwidth at ≈ 8.7 TB/s, reproducing Fig. 7's saturation.
    #[must_use]
    pub fn cryo_dram() -> Self {
        Self {
            burst_bytes: 4096,
            max_outstanding: 64,
        }
    }

    /// On-chip JSRAM: fine-grained words but deeply pipelined XY
    /// addressing — latency hiding is nearly perfect.
    #[must_use]
    pub fn jsram() -> Self {
        Self {
            burst_bytes: 256,
            max_outstanding: 65_536,
        }
    }

    /// GPU HBM path: 2 KiB bursts with the massive memory-level
    /// parallelism of >100 SMs (≈8 MiB in flight), which is how GPUs hide
    /// ~500 ns of HBM latency at full streaming bandwidth.
    #[must_use]
    pub fn hbm() -> Self {
        Self {
            burst_bytes: 2048,
            max_outstanding: 4096,
        }
    }

    /// Bytes in flight when the request window is full.
    #[must_use]
    pub fn window_bytes(&self) -> u64 {
        self.burst_bytes * u64::from(self.max_outstanding)
    }

    /// Effective sustainable bandwidth given the wire bandwidth and the
    /// round-trip `latency` (Little's law cap).
    #[must_use]
    pub fn effective_bandwidth(&self, bandwidth: Bandwidth, latency: TimeInterval) -> Bandwidth {
        if latency.seconds() <= 0.0 {
            return bandwidth;
        }
        let cap = self.window_bytes() as f64 / latency.seconds();
        Bandwidth::from_base(bandwidth.bytes_per_s().min(cap))
    }

    /// Transfer time for `bytes` at `bandwidth` with round-trip `latency`:
    /// one leading latency plus streaming at the effective bandwidth.
    /// Zero-byte transfers take zero time.
    #[must_use]
    pub fn transfer_time(
        &self,
        bytes: f64,
        bandwidth: Bandwidth,
        latency: TimeInterval,
    ) -> TimeInterval {
        if bytes <= 0.0 {
            return TimeInterval::ZERO;
        }
        let eff = self.effective_bandwidth(bandwidth, latency);
        TimeInterval::from_base(latency.seconds() + bytes / eff.bytes_per_s())
    }

    /// Achieved bandwidth (bytes/s) for a transfer of `bytes`, including
    /// the leading-latency penalty.
    #[must_use]
    pub fn achieved_bandwidth(
        &self,
        bytes: f64,
        bandwidth: Bandwidth,
        latency: TimeInterval,
    ) -> Bandwidth {
        let t = self.transfer_time(bytes, bandwidth, latency);
        if t.seconds() <= 0.0 {
            return bandwidth;
        }
        Bandwidth::from_base(bytes / t.seconds())
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::cryo_dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_takes_zero_time() {
        let m = TransferModel::cryo_dram();
        let t = m.transfer_time(0.0, Bandwidth::from_tbps(16.0), TimeInterval::from_ns(30.0));
        assert_eq!(t.seconds(), 0.0);
    }

    #[test]
    fn saturation_point_matches_paper() {
        // 256 KiB window at 30 ns → ~8.7 TB/s cap: raising wire bandwidth
        // from 8 to 32 TB/s barely helps (Fig. 7 saturation).
        let m = TransferModel::cryo_dram();
        let lat = TimeInterval::from_ns(30.0);
        let cap = m.effective_bandwidth(Bandwidth::from_tbps(32.0), lat);
        assert!((cap.tbps() - 8.738).abs() < 0.01, "got {}", cap.tbps());
        let at8 = m.effective_bandwidth(Bandwidth::from_tbps(8.0), lat);
        assert!((at8.tbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn small_transfer_pays_one_latency() {
        let m = TransferModel::cryo_dram();
        let lat = TimeInterval::from_ns(30.0);
        let t = m.transfer_time(64.0, Bandwidth::from_tbps(16.0), lat);
        assert!(t.ns() >= 30.0 && t.ns() < 30.1);
    }

    #[test]
    fn throughput_declines_monotonically_with_latency() {
        // The Fig. 7a sweep: 10 → 200 ns at fixed 16 TB/s.
        let m = TransferModel::cryo_dram();
        let bw = Bandwidth::from_tbps(16.0);
        let bytes = 100e6;
        let mut last = f64::INFINITY;
        for ns in [10.0, 30.0, 50.0, 100.0, 200.0] {
            let eff = m
                .achieved_bandwidth(bytes, bw, TimeInterval::from_ns(ns))
                .tbps();
            assert!(eff < last, "throughput must fall with latency");
            last = eff;
        }
    }

    #[test]
    fn large_transfer_approaches_effective_wire_speed() {
        let m = TransferModel::cryo_dram();
        let bw = Bandwidth::from_tbps(4.0); // below the 30 ns cap
        let lat = TimeInterval::from_ns(30.0);
        let eff = m.achieved_bandwidth(1e9, bw, lat);
        assert!(eff.tbps() > 0.99 * 4.0);
    }

    #[test]
    fn jsram_hides_latency_better_than_dram() {
        let bw = Bandwidth::from_tbps(16.0);
        let lat = TimeInterval::from_ns(30.0);
        let e_dram = TransferModel::cryo_dram().effective_bandwidth(bw, lat);
        let e_jsram = TransferModel::jsram().effective_bandwidth(bw, lat);
        assert!(e_jsram.tbps() >= e_dram.tbps());
        assert!((e_jsram.tbps() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_latency_is_wire_limited() {
        let m = TransferModel::cryo_dram();
        let bw = Bandwidth::from_tbps(16.0);
        let eff = m.effective_bandwidth(bw, TimeInterval::ZERO);
        assert!((eff.tbps() - 16.0).abs() < 1e-12);
    }
}
