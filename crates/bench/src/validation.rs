//! Experiment V1: analytical communication model vs discrete-event NoC
//! simulation.

use optimus::validate::{validate_all_reduce, ValidationPoint};
use scd_arch::Blade;
use scd_noc::NocError;

/// Runs the validation sweep on the baseline blade.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn noc_validation() -> Result<Vec<ValidationPoint>, NocError> {
    let blade = Blade::baseline();
    validate_all_reduce(
        &blade.torus(),
        blade.noc_config(),
        &[1e6, 4e6, 16e6, 64e6, 256e6],
    )
}

/// Renders the validation table.
#[must_use]
pub fn render_validation(points: &[ValidationPoint]) -> String {
    let mut out = String::from(
        "NoC validation: ring all-reduce on the 8×8 blade torus\n\n\
         bytes/node   analytical(µs)  simulated(µs)  sim/model\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>10.0}{:>16.3}{:>15.3}{:>11.2}\n",
            p.bytes,
            p.analytical_s * 1e6,
            p.simulated_s * 1e6,
            p.ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_ratios_near_unity() {
        let pts = noc_validation().unwrap();
        for p in &pts {
            assert!(
                (0.4..1.6).contains(&p.ratio()),
                "bytes {:.0e}: ratio {:.2}",
                p.bytes,
                p.ratio()
            );
        }
        assert!(render_validation(&pts).contains("sim/model"));
    }
}
