//! The contemporary-GPU baseline (H100) used for every comparison in the
//! paper's §VI: peak 0.9895 PFLOP/s (structured-sparse bf16), 3.35 TB/s of
//! HBM3 and 80 GB per device, 50 MB of on-die L2, NVLink within a node and
//! InfiniBand beyond it.

use crate::accelerator::Accelerator;
use crate::error::ArchError;
use crate::interconnect::Fabric;
use scd_mem::level::{LevelKind, MemoryHierarchy, MemoryLevel};
use scd_mem::transfer::TransferModel;
use scd_tech::units::{Bandwidth, Energy, TimeInterval};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GPU-based reference system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSystem {
    accelerator: Accelerator,
    fabric: Fabric,
    devices: u32,
}

impl GpuSystem {
    /// An H100 cluster of `devices` GPUs.
    ///
    /// ```
    /// use scd_arch::gpu::GpuSystem;
    ///
    /// let cluster = GpuSystem::h100_cluster(64);
    /// assert!((cluster.accelerator().peak_flops / 1e15 - 0.9895).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn h100_cluster(devices: u32) -> Self {
        let hierarchy = MemoryHierarchy::new(vec![
            MemoryLevel {
                kind: LevelKind::L1,
                // SMEM/L1 across 132 SMs.
                capacity_bytes: 30 << 20,
                bandwidth: Bandwidth::from_tbps(300.0),
                latency: TimeInterval::from_ns(25.0),
                energy_per_byte: Energy::from_pj(0.1),
                transfer: TransferModel::jsram(),
            },
            MemoryLevel {
                kind: LevelKind::L2,
                capacity_bytes: 50 << 20,
                bandwidth: Bandwidth::from_tbps(12.0),
                latency: TimeInterval::from_ns(250.0),
                energy_per_byte: Energy::from_pj(0.5),
                transfer: TransferModel::hbm(),
            },
            MemoryLevel {
                kind: LevelKind::MainMemory,
                capacity_bytes: 80 << 30,
                bandwidth: Bandwidth::from_tbps(3.35),
                latency: TimeInterval::from_ns(500.0),
                energy_per_byte: Energy::from_pj(7.0),
                transfer: TransferModel::hbm(),
            },
        ])
        .expect("H100 hierarchy is well-formed");
        Self {
            accelerator: Accelerator {
                name: "H100".to_owned(),
                peak_flops: 0.9895e15,
                max_utilization: 0.8,
                hierarchy,
            },
            fabric: Fabric::gpu_cluster(),
            devices,
        }
    }

    /// The per-device accelerator view.
    #[must_use]
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// The cluster fabric.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Device count.
    #[must_use]
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Total HBM capacity of the cluster (the Fig. 8b "open bar": 64 ×
    /// 80 GB = 5 TB).
    #[must_use]
    pub fn total_memory_bytes(&self) -> u64 {
        self.accelerator
            .hierarchy
            .outermost()
            .capacity_bytes
            .saturating_mul(u64::from(self.devices))
    }

    /// Validates the system.
    ///
    /// # Errors
    ///
    /// Propagates accelerator validation failures.
    pub fn validate(&self) -> Result<(), ArchError> {
        self.accelerator.validate()
    }
}

impl fmt::Display for GpuSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × {}", self.devices, self.accelerator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_numbers_match_paper() {
        let g = GpuSystem::h100_cluster(64);
        assert!((g.accelerator().peak_flops - 0.9895e15).abs() < 1.0);
        assert!((g.accelerator().dram_bandwidth().tbps() - 3.35).abs() < 1e-9);
        assert_eq!(g.total_memory_bytes(), 64 * (80u64 << 30));
    }

    #[test]
    fn fig8b_open_bar_is_5tb() {
        let g = GpuSystem::h100_cluster(64);
        let tb = g.total_memory_bytes() as f64 / (1u64 << 40) as f64;
        assert!((tb - 5.0).abs() < 0.01);
    }

    #[test]
    fn hbm_latency_mostly_hidden() {
        // The deep HBM queue must not cap 3.35 TB/s at 500 ns.
        let g = GpuSystem::h100_cluster(8);
        let dram = g.accelerator().hierarchy.outermost();
        let eff = dram
            .transfer
            .effective_bandwidth(dram.bandwidth, dram.latency);
        assert!((eff.tbps() - 3.35).abs() < 1e-9, "got {}", eff.tbps());
    }

    #[test]
    fn spu_vs_gpu_peak_ratio() {
        use crate::blade::Blade;
        let spu = Blade::baseline().accelerator();
        let gpu = GpuSystem::h100_cluster(64);
        let ratio = spu.peak_flops / gpu.accelerator().peak_flops;
        assert!((2.3..2.7).contains(&ratio), "≈2.5× peak, got {ratio}");
    }
}
