//! Synthetic traffic generators and load/latency measurement.
//!
//! Used by benchmarks and tests to characterize the blade NoC beyond the
//! collectives: uniform-random and transpose (worst-case dimension-order)
//! patterns, swept over offered load.

use crate::error::NocError;
use crate::sim::{Message, NocConfig, TorusSim};
use crate::topology::{NodeId, Torus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Traffic pattern selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Independent uniformly-random destinations.
    UniformRandom,
    /// Transpose: node (x, y) sends to (y, x) — adversarial for
    /// dimension-order routing.
    Transpose,
    /// Nearest-neighbor ring shift (the collective-like pattern).
    RingShift,
}

/// Result of a traffic experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficResult {
    /// Messages delivered.
    pub delivered: usize,
    /// Mean end-to-end latency in ps.
    pub mean_latency_ps: f64,
    /// 99th-percentile latency in ps.
    pub p99_latency_ps: u64,
    /// Makespan in ps.
    pub makespan_ps: u64,
    /// Aggregate delivered throughput in bytes/s.
    pub throughput_bytes_per_s: f64,
}

/// Runs `messages_per_node` messages of `bytes` each, injected at a fixed
/// per-node interval of `inject_interval_ps`, and reports latency and
/// throughput statistics.
///
/// # Errors
///
/// Propagates injection errors; returns [`NocError::InvalidConfig`] for a
/// zero message count.
pub fn run_traffic(
    torus: &Torus,
    config: NocConfig,
    pattern: TrafficPattern,
    bytes: f64,
    messages_per_node: usize,
    inject_interval_ps: u64,
    seed: u64,
) -> Result<TrafficResult, NocError> {
    if messages_per_node == 0 {
        return Err(NocError::InvalidConfig {
            reason: "need at least one message per node".to_owned(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = TorusSim::new(*torus, config);
    let n = torus.nodes();
    for k in 0..messages_per_node {
        let t = k as u64 * inject_interval_ps;
        for i in 0..n {
            let src = torus.node(i);
            let dst = match pattern {
                TrafficPattern::UniformRandom => {
                    let mut d = torus.node(rng.gen_range(0..n));
                    if d == src {
                        d = torus.node((i + 1) % n);
                    }
                    d
                }
                TrafficPattern::Transpose => NodeId::new(src.y, src.x),
                TrafficPattern::RingShift => torus.node((i + 1) % n),
            };
            if dst == src {
                continue; // transpose diagonal
            }
            sim.inject(Message {
                src,
                dst,
                bytes,
                inject_at: t,
            })?;
        }
    }
    sim.run();
    let deliveries = sim.deliveries();
    let delivered = deliveries.len();
    let mut latencies: Vec<u64> = deliveries.iter().map(|d| d.latency_ps).collect();
    latencies.sort_unstable();
    let mean = latencies.iter().map(|&l| l as f64).sum::<f64>() / delivered.max(1) as f64;
    let p99 = latencies
        .get((delivered as f64 * 0.99) as usize)
        .copied()
        .unwrap_or(0);
    let makespan = sim.makespan_ps();
    let total_bytes = bytes * delivered as f64;
    Ok(TrafficResult {
        delivered,
        mean_latency_ps: mean,
        p99_latency_ps: p99,
        makespan_ps: makespan,
        throughput_bytes_per_s: if makespan == 0 {
            0.0
        } else {
            total_bytes / (makespan as f64 * 1e-12)
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig::blade_baseline()
    }

    #[test]
    fn uniform_traffic_delivers_everything() {
        let t = Torus::blade_8x8();
        let r = run_traffic(&t, cfg(), TrafficPattern::UniformRandom, 4096.0, 4, 1000, 7).unwrap();
        assert_eq!(r.delivered, 64 * 4);
        assert!(r.mean_latency_ps > 0.0);
        assert!(r.throughput_bytes_per_s > 0.0);
    }

    #[test]
    fn ring_shift_has_low_latency() {
        let t = Torus::blade_8x8();
        let ring = run_traffic(&t, cfg(), TrafficPattern::RingShift, 4096.0, 2, 1000, 7).unwrap();
        let uniform =
            run_traffic(&t, cfg(), TrafficPattern::UniformRandom, 4096.0, 2, 1000, 7).unwrap();
        assert!(
            ring.mean_latency_ps < uniform.mean_latency_ps,
            "nearest-neighbor should beat uniform ({} vs {})",
            ring.mean_latency_ps,
            uniform.mean_latency_ps
        );
    }

    #[test]
    fn transpose_skips_diagonal() {
        let t = Torus::new(4, 4).unwrap();
        let r = run_traffic(&t, cfg(), TrafficPattern::Transpose, 1024.0, 1, 0, 7).unwrap();
        assert_eq!(r.delivered, 16 - 4);
    }

    #[test]
    fn determinism_under_seed() {
        let t = Torus::new(4, 4).unwrap();
        let a = run_traffic(&t, cfg(), TrafficPattern::UniformRandom, 2048.0, 3, 500, 42).unwrap();
        let b = run_traffic(&t, cfg(), TrafficPattern::UniformRandom, 2048.0, 3, 500, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_messages_rejected() {
        let t = Torus::new(2, 2).unwrap();
        assert!(run_traffic(&t, cfg(), TrafficPattern::RingShift, 1.0, 0, 0, 7).is_err());
    }

    #[test]
    fn higher_load_raises_latency() {
        let t = Torus::blade_8x8();
        // Long messages injected back-to-back vs widely spaced.
        let hot = run_traffic(&t, cfg(), TrafficPattern::UniformRandom, 1e6, 4, 10, 3).unwrap();
        let cold = run_traffic(
            &t,
            cfg(),
            TrafficPattern::UniformRandom,
            1e6,
            4,
            10_000_000,
            3,
        )
        .unwrap();
        assert!(hot.mean_latency_ps > cold.mean_latency_ps);
    }
}
