//! Error types for the NoC simulator.

use std::error::Error;
use std::fmt;

/// Errors from constructing or driving the network simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum NocError {
    /// A coordinate was outside the torus.
    InvalidNode {
        /// Offending coordinate.
        x: usize,
        /// Offending coordinate.
        y: usize,
        /// Torus extent.
        width: usize,
        /// Torus extent.
        height: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidNode {
                x,
                y,
                width,
                height,
            } => write!(f, "node ({x},{y}) outside {width}×{height} torus"),
            Self::InvalidConfig { reason } => write!(f, "invalid NoC configuration: {reason}"),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_coordinates() {
        let e = NocError::InvalidNode {
            x: 9,
            y: 1,
            width: 8,
            height: 8,
        };
        assert!(e.to_string().contains("(9,1)"));
    }
}
