//! 2D-torus topology and dimension-order routing.
//!
//! The SCD blade (Fig. 3d) arranges an 8×8 array of SPUs whose local
//! switches form a 2D torus. Dimension-order (X then Y) routing with
//! shortest-direction wraparound is deadlock-benign for the offered
//! traffic the blade sees (collectives and nearest-neighbor exchange).

use crate::error::NocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node coordinate on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId {
    /// Column.
    pub x: usize,
    /// Row.
    pub y: usize,
}

impl NodeId {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Output direction from a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// +x neighbor.
    East,
    /// −x neighbor.
    West,
    /// +y neighbor.
    North,
    /// −y neighbor.
    South,
    /// Local ejection port.
    Local,
}

impl Direction {
    /// The four link directions (excluding `Local`).
    pub const LINKS: [Self; 4] = [Self::East, Self::West, Self::North, Self::South];
}

/// A `width × height` torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, NocError> {
        if width == 0 || height == 0 {
            return Err(NocError::InvalidConfig {
                reason: "torus dimensions must be non-zero".to_owned(),
            });
        }
        Ok(Self { width, height })
    }

    /// The paper's 8×8 blade.
    #[must_use]
    pub fn blade_8x8() -> Self {
        Self {
            width: 8,
            height: 8,
        }
    }

    /// Torus width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Torus height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Validates a coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNode`] when out of bounds.
    pub fn check(&self, node: NodeId) -> Result<(), NocError> {
        if node.x < self.width && node.y < self.height {
            Ok(())
        } else {
            Err(NocError::InvalidNode {
                x: node.x,
                y: node.y,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Linear index of a node (row-major).
    #[must_use]
    pub fn index(&self, node: NodeId) -> usize {
        node.y * self.width + node.x
    }

    /// Node for a linear index.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeId {
        NodeId::new(index % self.width, index / self.width)
    }

    /// The neighbor of `node` in `dir` (with wraparound).
    ///
    /// # Panics
    ///
    /// Panics if `dir` is [`Direction::Local`].
    #[must_use]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> NodeId {
        match dir {
            Direction::East => NodeId::new((node.x + 1) % self.width, node.y),
            Direction::West => NodeId::new((node.x + self.width - 1) % self.width, node.y),
            Direction::North => NodeId::new(node.x, (node.y + 1) % self.height),
            Direction::South => NodeId::new(node.x, (node.y + self.height - 1) % self.height),
            Direction::Local => panic!("Local is not a link direction"),
        }
    }

    /// Signed shortest offset from `a` to `b` along one ring of size `n`.
    fn ring_offset(a: usize, b: usize, n: usize) -> isize {
        let fwd = (b + n - a) % n;
        let bwd = n - fwd;
        if fwd == 0 {
            0
        } else if fwd <= bwd {
            fwd as isize
        } else {
            -(bwd as isize)
        }
    }

    /// Hop distance between two nodes under shortest-path torus routing.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let dx = Self::ring_offset(a.x, b.x, self.width).unsigned_abs();
        let dy = Self::ring_offset(a.y, b.y, self.height).unsigned_abs();
        dx + dy
    }

    /// Next hop under dimension-order (X-first) shortest-direction routing,
    /// or `Local` if already at the destination.
    #[must_use]
    pub fn route(&self, at: NodeId, dst: NodeId) -> Direction {
        let dx = Self::ring_offset(at.x, dst.x, self.width);
        if dx > 0 {
            return Direction::East;
        }
        if dx < 0 {
            return Direction::West;
        }
        let dy = Self::ring_offset(at.y, dst.y, self.height);
        if dy > 0 {
            return Direction::North;
        }
        if dy < 0 {
            return Direction::South;
        }
        Direction::Local
    }

    /// The full dimension-order path (excluding the source, including the
    /// destination).
    #[must_use]
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut at = src;
        while at != dst {
            let dir = self.route(at, dst);
            at = self.neighbor(at, dir);
            path.push(at);
        }
        path
    }

    /// Average hop distance over all node pairs (network diameter metric).
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for i in 0..self.nodes() {
            for j in 0..self.nodes() {
                if i != j {
                    total += self.distance(self.node(i), self.node(j));
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus::blade_8x8();
        // 0 → 7 along x is 1 hop backwards, not 7 forwards.
        assert_eq!(t.distance(NodeId::new(0, 0), NodeId::new(7, 0)), 1);
        assert_eq!(t.distance(NodeId::new(0, 0), NodeId::new(4, 0)), 4);
        assert_eq!(t.distance(NodeId::new(0, 0), NodeId::new(4, 4)), 8);
    }

    #[test]
    fn route_is_x_first() {
        let t = Torus::blade_8x8();
        assert_eq!(
            t.route(NodeId::new(0, 0), NodeId::new(2, 3)),
            Direction::East
        );
        assert_eq!(
            t.route(NodeId::new(2, 0), NodeId::new(2, 3)),
            Direction::North
        );
        assert_eq!(
            t.route(NodeId::new(2, 3), NodeId::new(2, 3)),
            Direction::Local
        );
    }

    #[test]
    fn path_length_equals_distance() {
        let t = Torus::blade_8x8();
        for (src, dst) in [
            (NodeId::new(0, 0), NodeId::new(5, 6)),
            (NodeId::new(7, 7), NodeId::new(0, 0)),
            (NodeId::new(3, 3), NodeId::new(3, 3)),
        ] {
            assert_eq!(t.path(src, dst).len(), t.distance(src, dst));
        }
        let p = t.path(NodeId::new(0, 0), NodeId::new(2, 1));
        assert_eq!(p.last(), Some(&NodeId::new(2, 1)));
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::blade_8x8();
        assert_eq!(
            t.neighbor(NodeId::new(7, 0), Direction::East),
            NodeId::new(0, 0)
        );
        assert_eq!(
            t.neighbor(NodeId::new(0, 0), Direction::South),
            NodeId::new(0, 7)
        );
    }

    #[test]
    fn mean_distance_8x8_is_4() {
        // Mean torus distance per dimension is n/4 = 2; two dimensions → 4
        // (up to the small bias from excluding self-pairs).
        let t = Torus::blade_8x8();
        let d = t.mean_distance();
        assert!((d - 4.06).abs() < 0.01, "got {d}");
    }

    #[test]
    fn index_roundtrip_and_bounds() {
        let t = Torus::new(4, 3).unwrap();
        for i in 0..t.nodes() {
            assert_eq!(t.index(t.node(i)), i);
        }
        assert!(t.check(NodeId::new(3, 2)).is_ok());
        assert!(t.check(NodeId::new(4, 0)).is_err());
        assert!(Torus::new(0, 5).is_err());
    }
}
