//! Offline stand-in for the `proptest 1.x` API subset this workspace uses.
//!
//! The workspace builds hermetically, so the real `proptest` cannot be
//! fetched. This crate keeps the call-site surface of
//! `tests/proptest_invariants.rs` — the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros, range and tuple strategies, `prop_map`,
//! `prop::collection::vec`, `prop::sample::Index`, `any::<T>()` and
//! `ProptestConfig::with_cases` — over a deterministic per-test RNG.
//!
//! Deliberately omitted relative to real proptest: shrinking (failures
//! report the sampled case number; rerunning is deterministic, so the case
//! reproduces exactly) and persistence files.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Mirrors real proptest: attributes (including
/// `#[test]`) written inside the macro are carried through verbatim; each
/// argument is sampled from its strategy once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_tests! { $config; $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("proptest {} failed at case {case}/{}: {err}",
                           stringify!($name), config.cases);
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body; failure aborts the current case with
/// a `TestCaseError` instead of panicking mid-sample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}
