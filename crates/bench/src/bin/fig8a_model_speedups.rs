//! Experiment F8a: inference speed-up across models.
fn main() -> Result<(), optimus::OptimusError> {
    let rows = scd_bench::inference_experiments::fig8a_rows()?;
    print!("{}", scd_bench::inference_experiments::render_fig8a(&rows));
    Ok(())
}
