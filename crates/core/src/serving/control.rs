//! The online control plane: load-shedding admission control and a
//! queue-depth autoscaler.
//!
//! PR 4 made SLO classes an *accounting* concept — every report slices
//! goodput and attainment per class, but the decision path (who runs,
//! who waits, how many blades exist) stayed class-blind. This module
//! holds the configuration and runtime state that close the loop:
//!
//! * [`AdmissionControl`] — protect one *strict* class under overload by
//!   shedding best-effort requests at the admission boundary whenever
//!   the strict class's observed attainment drops below a floor, with
//!   shed/unshed hysteresis so a single bad completion does not flap the
//!   gate. Shed requests are dropped (never run) and reported via
//!   [`ServingReport::shed_requests`](super::report::ServingReport::shed_requests)
//!   and per class.
//! * [`AutoscaleConfig`] — scale the active blade count of a
//!   central-queue cluster up and down between replayed events, driven
//!   by queue-depth watermarks with a cooldown (hysteresis in time) and
//!   a warm-up delay per added blade.
//! * [`ControlPlane`] — the [`Scenario`](super::scenario::Scenario)
//!   surface bundling both, wired in via
//!   [`Scenario::control`](super::scenario::Scenario::control).
//!
//! Both mechanisms are **deterministic**: the shed gate updates only on
//! strict-class completions (which always occur in real engine steps on
//! both simulation cores) and sheds only at admission-capable instants,
//! and the autoscaler evaluates once per central-queue dispatch round —
//! so event-driven and per-step replays stay bit-identical, and a
//! scenario with no control plane is provably untouched (pinned by the
//! regression and property suites).

use super::report::SloClass;
use crate::error::OptimusError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Load-shedding admission control: when the observed SLO attainment of
/// `strict_class` over a sliding window of its completions falls below
/// `floor`, the engine starts *shedding* — requests of every other class
/// are dropped at the moment they would have been admitted — until
/// attainment recovers to `floor + resume_margin` (hysteresis).
///
/// Strict-class requests are **never** shed (property-tested), and a
/// replay whose config carries no `AdmissionControl` takes none of these
/// branches, so class-blind scenarios stay bit-identical to their PR 6
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Index (into the scenario's SLO-class table) of the protected
    /// class whose attainment drives the gate.
    pub strict_class: u32,
    /// Attainment floor in `(0, 1]`: shedding starts when the windowed
    /// strict-class attainment drops below this.
    pub floor: f64,
    /// Hysteresis margin: shedding stops only once windowed attainment
    /// reaches `floor + resume_margin` (so `floor + resume_margin <= 1`).
    pub resume_margin: f64,
    /// Number of most-recent strict-class completions the attainment is
    /// computed over.
    pub window: u32,
    /// Completions required before the gate may act at all (avoids
    /// flapping on the first few observations).
    pub min_observations: u32,
}

impl AdmissionControl {
    /// Shedding gate protecting `strict_class` at attainment `floor`,
    /// with a 0.05 resume margin over a 32-completion window (at least
    /// 8 observations before acting).
    #[must_use]
    pub fn new(strict_class: u32, floor: f64) -> Self {
        Self {
            strict_class,
            floor,
            resume_margin: 0.05,
            window: 32,
            min_observations: 8,
        }
    }

    /// Overrides the unshed hysteresis margin.
    #[must_use]
    pub fn with_resume_margin(mut self, resume_margin: f64) -> Self {
        self.resume_margin = resume_margin;
        self
    }

    /// Overrides the observation window and the minimum observation
    /// count before the gate acts.
    #[must_use]
    pub fn with_window(mut self, window: u32, min_observations: u32) -> Self {
        self.window = window;
        self.min_observations = min_observations;
        self
    }

    pub(crate) fn validate(&self, classes: &[SloClass]) -> Result<(), OptimusError> {
        let err = |reason: String| Err(OptimusError::Serving { reason });
        if self.strict_class as usize >= classes.len() {
            return err(format!(
                "admission control protects class {} but only {} SLO class(es) are defined",
                self.strict_class,
                classes.len()
            ));
        }
        if classes.len() < 2 {
            return err(
                "admission control needs at least two SLO classes (a strict one to protect \
                 and a best-effort one to shed)"
                    .into(),
            );
        }
        if !(self.floor.is_finite() && self.floor > 0.0 && self.floor <= 1.0) {
            return err(format!(
                "admission-control floor must lie in (0, 1], got {}",
                self.floor
            ));
        }
        if !(self.resume_margin.is_finite() && self.resume_margin >= 0.0)
            || self.floor + self.resume_margin > 1.0
        {
            return err(format!(
                "admission-control resume margin must satisfy 0 <= margin and \
                 floor + margin <= 1, got floor {} margin {}",
                self.floor, self.resume_margin
            ));
        }
        if self.window == 0 || self.min_observations == 0 || self.min_observations > self.window {
            return err(format!(
                "admission-control window needs 1 <= min_observations <= window, \
                 got window {} min_observations {}",
                self.window, self.min_observations
            ));
        }
        Ok(())
    }
}

/// Queue-depth autoscaler for a central-queue cluster: between dispatch
/// rounds the active blade count grows when the number of *ready*
/// queued requests reaches `high_watermark` and shrinks (only onto an
/// idle blade) when it falls to `low_watermark`, bounded to
/// `[min_blades, max_blades]`. Every scale event starts a `cooldown_s`
/// quiet period, and a freshly added blade only accepts work `warmup_s`
/// after the decision (model/runtime bring-up cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Blades active at replay start and the scale-down lower bound.
    pub min_blades: u32,
    /// Scale-up upper bound (at most the topology's blade pool).
    pub max_blades: u32,
    /// Ready-queue depth at or above which one blade is added.
    pub high_watermark: u32,
    /// Ready-queue depth at or below which one idle blade is retired.
    pub low_watermark: u32,
    /// Bring-up delay (s): an added blade starts serving this long after
    /// the scale-up decision.
    pub warmup_s: f64,
    /// Minimum time (s) between consecutive scale events (hysteresis in
    /// time — bounds flapping).
    pub cooldown_s: f64,
}

impl AutoscaleConfig {
    /// Autoscaler between `min_blades` and `max_blades` with watermarks
    /// 8 (up) / 1 (down), 0.5 s warm-up and 1 s cooldown.
    #[must_use]
    pub fn new(min_blades: u32, max_blades: u32) -> Self {
        Self {
            min_blades,
            max_blades,
            high_watermark: 8,
            low_watermark: 1,
            warmup_s: 0.5,
            cooldown_s: 1.0,
        }
    }

    /// Overrides the scale-down / scale-up queue-depth watermarks.
    #[must_use]
    pub fn with_watermarks(mut self, low: u32, high: u32) -> Self {
        self.low_watermark = low;
        self.high_watermark = high;
        self
    }

    /// Overrides the per-blade bring-up delay.
    #[must_use]
    pub fn with_warmup(mut self, warmup_s: f64) -> Self {
        self.warmup_s = warmup_s;
        self
    }

    /// Overrides the inter-event cooldown.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown_s: f64) -> Self {
        self.cooldown_s = cooldown_s;
        self
    }

    pub(crate) fn validate(&self, pool_blades: u32) -> Result<(), OptimusError> {
        let err = |reason: String| Err(OptimusError::Serving { reason });
        if self.min_blades == 0 || self.min_blades > self.max_blades {
            return err(format!(
                "autoscaler bounds need 1 <= min_blades <= max_blades, got {}..={}",
                self.min_blades, self.max_blades
            ));
        }
        if self.max_blades > pool_blades {
            return err(format!(
                "autoscaler max_blades {} exceeds the topology's {} blade(s)",
                self.max_blades, pool_blades
            ));
        }
        if self.low_watermark >= self.high_watermark {
            return err(format!(
                "autoscaler watermarks need low < high, got low {} high {}",
                self.low_watermark, self.high_watermark
            ));
        }
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        if !nonneg(self.warmup_s) || !nonneg(self.cooldown_s) {
            return err(format!(
                "autoscaler warm-up and cooldown must be finite and non-negative, \
                 got warmup {} cooldown {}",
                self.warmup_s, self.cooldown_s
            ));
        }
        Ok(())
    }
}

/// The control-plane bundle a [`Scenario`](super::scenario::Scenario)
/// attaches via [`Scenario::control`](super::scenario::Scenario::control):
/// either half is optional, and an empty `ControlPlane` is exactly a
/// scenario without one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlPlane {
    /// Load-shedding gate (engine-level; any topology except
    /// disaggregated).
    pub admission: Option<AdmissionControl>,
    /// Blade autoscaler (cluster-level; central dispatch on a mixed
    /// topology only).
    pub autoscale: Option<AutoscaleConfig>,
}

impl ControlPlane {
    /// An empty control plane (no shedding, no autoscaling).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the load-shedding admission gate.
    #[must_use]
    pub fn shed(mut self, admission: AdmissionControl) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Enables the blade autoscaler.
    #[must_use]
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }
}

/// Runtime state of one shedding gate: the sliding strict-class
/// attainment window, the hysteresis latch, and the per-request shed
/// flags the report is assembled from. Carries the strict class's SLO
/// targets so the engine can feed it the same raw `(t_first, t_rest)`
/// pair the final report is scored on — the online predicate and
/// [`finalize`](super::engine)'s are bit-identical by construction.
#[derive(Debug, Clone)]
pub(crate) struct ControlState {
    cfg: AdmissionControl,
    ttft_slo_s: f64,
    tpot_slo_s: f64,
    shedding: bool,
    recent: VecDeque<bool>,
    met: u32,
    shed: Vec<bool>,
    shed_count: u64,
}

impl ControlState {
    pub(crate) fn new(
        cfg: AdmissionControl,
        requests: usize,
        ttft_slo_s: f64,
        tpot_slo_s: f64,
    ) -> Self {
        Self {
            cfg,
            ttft_slo_s,
            tpot_slo_s,
            shedding: false,
            recent: VecDeque::with_capacity(cfg.window as usize + 1),
            met: 0,
            shed: vec![false; requests],
            shed_count: 0,
        }
    }

    /// The protected class index.
    pub(crate) fn strict_class(&self) -> u32 {
        self.cfg.strict_class
    }

    /// Whether a request of `class` would be shed right now. Strict-class
    /// requests never are.
    pub(crate) fn should_shed(&self, class: u32) -> bool {
        self.shedding && class != self.cfg.strict_class
    }

    /// Records that the queue member `idx` (of class `class`) was shed.
    pub(crate) fn mark_shed(&mut self, idx: usize, class: u32) {
        debug_assert!(
            class != self.cfg.strict_class,
            "never shed the strict class"
        );
        debug_assert!(!self.shed[idx], "request shed twice");
        let _ = class;
        self.shed[idx] = true;
        self.shed_count += 1;
    }

    /// Feeds one strict-class completion (its TTFT and per-token time)
    /// into the sliding window and moves the hysteresis latch.
    pub(crate) fn observe_strict(&mut self, t_first: f64, t_rest: f64) {
        let met_slo = t_first <= self.ttft_slo_s && t_rest <= self.tpot_slo_s;
        self.recent.push_back(met_slo);
        if met_slo {
            self.met += 1;
        }
        if self.recent.len() > self.cfg.window as usize && self.recent.pop_front() == Some(true) {
            self.met -= 1;
        }
        if (self.recent.len() as u32) < self.cfg.min_observations {
            return;
        }
        let attainment = f64::from(self.met) / self.recent.len() as f64;
        if self.shedding {
            if attainment >= self.cfg.floor + self.cfg.resume_margin {
                self.shedding = false;
            }
        } else if attainment < self.cfg.floor {
            self.shedding = true;
        }
    }

    pub(crate) fn is_shed(&self, idx: usize) -> bool {
        self.shed[idx]
    }

    pub(crate) fn shed_count(&self) -> u64 {
        self.shed_count
    }

    /// Merges another gate's shed flags into this one (per-blade
    /// dispatch runs one gate per blade over disjoint request subsets).
    pub(crate) fn absorb(&mut self, other: &ControlState) {
        for (mine, theirs) in self.shed.iter_mut().zip(&other.shed) {
            debug_assert!(!(*mine && *theirs), "blades shed disjoint requests");
            *mine |= *theirs;
        }
        self.shed_count += other.shed_count;
    }
}

/// Runtime state of one autoscaler: the active-blade count, the
/// cooldown timestamp and the event counters the cluster report exposes.
#[derive(Debug, Clone)]
pub(crate) struct ScaleState {
    cfg: AutoscaleConfig,
    active: u32,
    last_event_s: f64,
    events: u32,
    peak_active: u32,
}

impl ScaleState {
    pub(crate) fn new(cfg: AutoscaleConfig) -> Self {
        Self {
            cfg,
            active: cfg.min_blades,
            last_event_s: f64::NEG_INFINITY,
            events: 0,
            peak_active: cfg.min_blades,
        }
    }

    pub(crate) fn active(&self) -> u32 {
        self.active
    }

    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    pub(crate) fn peak_active(&self) -> u32 {
        self.peak_active
    }

    pub(crate) fn warmup_s(&self) -> f64 {
        self.cfg.warmup_s
    }

    /// The exact cooldown predicate [`Self::evaluate`] opens with: while
    /// it holds, an evaluation at `now` returns `None` with no side
    /// effects. The decode-stretch planner uses it to prove skipped
    /// end-of-round evaluations unobservable.
    pub(crate) fn in_cooldown(&self, now: f64) -> bool {
        now - self.last_event_s < self.cfg.cooldown_s
    }

    /// The `(last_event_s, cooldown_s)` pair behind
    /// [`Self::in_cooldown`], exported so a decode stretch can re-apply
    /// the predicate per iteration without holding `&self`.
    pub(crate) fn cooldown_guard(&self) -> (f64, f64) {
        (self.last_event_s, self.cfg.cooldown_s)
    }

    /// Whether an out-of-cooldown evaluation with this depth/idleness
    /// would change the active count — the watermark branches of
    /// [`Self::evaluate`] verbatim, without the side effects. While this
    /// is `false` and `(ready_depth, top_blade_idle, active)` provably
    /// cannot change, evaluations are no-ops regardless of cooldown.
    pub(crate) fn would_fire(&self, ready_depth: usize, top_blade_idle: bool) -> bool {
        let depth = ready_depth as u64;
        (depth >= u64::from(self.cfg.high_watermark) && self.active < self.cfg.max_blades)
            || (depth <= u64::from(self.cfg.low_watermark)
                && self.active > self.cfg.min_blades
                && top_blade_idle)
    }

    /// One watermark evaluation at time `now` with `ready_depth` queued
    /// requests ready to run; `top_blade_idle` reports whether the
    /// highest-indexed active blade holds no running work (the only one
    /// scale-down may retire). Returns `(from, to)` when the active
    /// count changed.
    pub(crate) fn evaluate(
        &mut self,
        now: f64,
        ready_depth: usize,
        top_blade_idle: bool,
    ) -> Option<(u32, u32)> {
        if now - self.last_event_s < self.cfg.cooldown_s {
            return None;
        }
        let depth = ready_depth as u64;
        let from = self.active;
        if depth >= u64::from(self.cfg.high_watermark) && self.active < self.cfg.max_blades {
            self.active += 1;
        } else if depth <= u64::from(self.cfg.low_watermark)
            && self.active > self.cfg.min_blades
            && top_blade_idle
        {
            self.active -= 1;
        } else {
            return None;
        }
        self.last_event_s = now;
        self.events += 1;
        self.peak_active = self.peak_active.max(self.active);
        Some((from, self.active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_classes() -> Vec<SloClass> {
        vec![SloClass::interactive(), SloClass::batch()]
    }

    #[test]
    fn admission_gate_latches_with_hysteresis() {
        let cfg = AdmissionControl::new(0, 0.5)
            .with_resume_margin(0.25)
            .with_window(4, 2);
        cfg.validate(&two_classes()).unwrap();
        // Targets: TTFT 1.0 s, TPOT 0.1 s.
        let mut st = ControlState::new(cfg, 8, 1.0, 0.1);
        assert_eq!(st.strict_class(), 0);
        let (hit, miss) = ((0.5, 0.05), (2.0, 0.05));
        // Too few observations: one miss cannot trip the gate.
        st.observe_strict(miss.0, miss.1);
        assert!(!st.should_shed(1));
        // A second miss (attainment 0/2 < 0.5) trips it — but never
        // against the strict class itself.
        st.observe_strict(miss.0, miss.1);
        assert!(st.should_shed(1) && !st.should_shed(0));
        // Recovery must clear floor + margin = 0.75: at 2/4 it stays
        // latched, at 3/4 it unsheds.
        st.observe_strict(hit.0, hit.1);
        st.observe_strict(hit.0, hit.1);
        assert!(st.should_shed(1), "2/4 < 0.75 keeps shedding");
        st.observe_strict(hit.0, hit.1);
        assert!(!st.should_shed(1), "3/4 >= 0.75 unsheds");
        // Window slides: the two early misses age out entirely.
        st.observe_strict(hit.0, hit.1);
        assert!(!st.should_shed(1));
        st.mark_shed(3, 1);
        assert!(st.is_shed(3) && !st.is_shed(2));
        assert_eq!(st.shed_count(), 1);
    }

    #[test]
    fn control_state_absorb_merges_disjoint_sheds() {
        let cfg = AdmissionControl::new(0, 0.5);
        let mut a = ControlState::new(cfg, 4, 1.0, 0.1);
        let mut b = ControlState::new(cfg, 4, 1.0, 0.1);
        a.mark_shed(0, 1);
        b.mark_shed(3, 1);
        a.absorb(&b);
        assert!(a.is_shed(0) && a.is_shed(3) && !a.is_shed(1));
        assert_eq!(a.shed_count(), 2);
    }

    #[test]
    fn admission_config_rejects_degenerate_dials() {
        let classes = two_classes();
        let bad = [
            AdmissionControl::new(2, 0.9), // class out of range
            AdmissionControl::new(0, 0.0), // floor not in (0, 1]
            AdmissionControl::new(0, 1.5), // floor not in (0, 1]
            AdmissionControl::new(0, 0.9).with_resume_margin(0.2), // floor+margin > 1
            AdmissionControl::new(0, 0.9).with_resume_margin(-0.1),
            AdmissionControl::new(0, 0.9).with_window(0, 0),
            AdmissionControl::new(0, 0.9).with_window(4, 5), // min_obs > window
        ];
        for cfg in bad {
            assert!(cfg.validate(&classes).is_err(), "{cfg:?}");
        }
        // A single class leaves nothing to shed.
        assert!(AdmissionControl::new(0, 0.9)
            .validate(&[SloClass::interactive()])
            .is_err());
        AdmissionControl::new(1, 0.9).validate(&classes).unwrap();
    }

    #[test]
    fn autoscaler_respects_bounds_cooldown_and_idle_gate() {
        let cfg = AutoscaleConfig::new(1, 3)
            .with_watermarks(0, 4)
            .with_cooldown(1.0);
        cfg.validate(4).unwrap();
        let mut st = ScaleState::new(cfg);
        assert_eq!(st.active(), 1);
        // Deep queue scales up; cooldown blocks an immediate second step.
        assert_eq!(st.evaluate(0.0, 10, true), Some((1, 2)));
        assert_eq!(st.evaluate(0.5, 10, true), None);
        assert_eq!(st.evaluate(1.0, 10, true), Some((2, 3)));
        // At max_blades the deep queue no longer scales.
        assert_eq!(st.evaluate(2.5, 10, true), None);
        assert_eq!(st.peak_active(), 3);
        // Scale-down needs the top blade idle.
        assert_eq!(st.evaluate(4.0, 0, false), None);
        assert_eq!(st.evaluate(4.0, 0, true), Some((3, 2)));
        // Between the watermarks nothing happens.
        assert_eq!(st.evaluate(6.0, 2, true), None);
        assert_eq!(st.evaluate(7.0, 0, true), Some((2, 1)));
        // At min_blades the empty queue no longer shrinks.
        assert_eq!(st.evaluate(9.0, 0, true), None);
        assert_eq!(st.events(), 4);
    }

    #[test]
    fn autoscale_config_rejects_degenerate_dials() {
        let bad = [
            AutoscaleConfig::new(0, 2),
            AutoscaleConfig::new(3, 2),
            AutoscaleConfig::new(1, 8), // beyond the pool
            AutoscaleConfig::new(1, 4).with_watermarks(4, 4), // low >= high
            AutoscaleConfig::new(1, 4).with_warmup(f64::NAN),
            AutoscaleConfig::new(1, 4).with_cooldown(-1.0),
        ];
        for cfg in bad {
            assert!(cfg.validate(4).is_err(), "{cfg:?}");
        }
        AutoscaleConfig::new(1, 4).validate(4).unwrap();
    }

    #[test]
    fn control_plane_builder_composes() {
        let cp = ControlPlane::new()
            .shed(AdmissionControl::new(0, 0.9))
            .autoscale(AutoscaleConfig::new(1, 4));
        assert_eq!(cp.admission.unwrap().strict_class, 0);
        assert_eq!(cp.autoscale.unwrap().max_blades, 4);
        assert_eq!(ControlPlane::default(), ControlPlane::new());
    }
}
