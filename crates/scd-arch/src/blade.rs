//! The SCD blade (Fig. 3c/3d): an 8×8 SPU array with SNU stacks at the
//! edges, 2 TB of cryo-DRAM behind the 4K↔77K datalink, joined by a
//! 2D-torus of 73 TB/s links.

use crate::accelerator::Accelerator;
use crate::error::ArchError;
use crate::interconnect::Fabric;
use crate::spu::{Spu, SpuConfig};
use scd_mem::datalink::Datalink;
use scd_mem::dram::CryoDramBlock;
use scd_mem::level::{LevelKind, MemoryHierarchy, MemoryLevel};
use scd_mem::transfer::TransferModel;
use scd_noc::sim::NocConfig;
use scd_noc::switch::HierarchicalSwitch;
use scd_noc::topology::Torus;
use scd_tech::units::{Bandwidth, Energy, TimeInterval};
use scd_tech::Technology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the SNU (network + shared-L2) stacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnuConfig {
    /// Number of HD JSRAM stacks forming the distributed shared L2.
    pub l2_stacks: u32,
    /// Shared L2 capacity across the blade.
    pub l2_capacity_bytes: u64,
    /// L2 bandwidth seen by one SPU (network-limited slice access).
    pub l2_bandwidth_per_spu: Bandwidth,
    /// Average L2 access latency (hops to the blade edge + banks).
    pub l2_latency: TimeInterval,
}

impl Default for SnuConfig {
    fn default() -> Self {
        Self {
            l2_stacks: 16,
            l2_capacity_bytes: (3.375 * (1u64 << 30) as f64) as u64,
            l2_bandwidth_per_spu: Bandwidth::from_tbps(24.0),
            l2_latency: TimeInterval::from_ns(10.0),
        }
    }
}

/// The full blade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blade {
    technology: Technology,
    spu: Spu,
    spus: u32,
    snu: SnuConfig,
    dram: CryoDramBlock,
    datalink: Datalink,
    dram_latency: TimeInterval,
}

impl Blade {
    /// The paper's baseline blade: 64 SPUs, 3.375 GB shared L2, 2 TB
    /// cryo-DRAM at 30 TB/s / 30 ns.
    ///
    /// ```
    /// use scd_arch::blade::Blade;
    ///
    /// let blade = Blade::baseline();
    /// assert_eq!(blade.spus(), 64);
    /// let acc = blade.accelerator();
    /// assert!((acc.peak_flops / 1e15 - 2.46).abs() < 0.2);
    /// ```
    #[must_use]
    pub fn baseline() -> Self {
        let technology = Technology::scd_nbtin();
        let spu = Spu::derive(&technology, SpuConfig::default())
            .expect("baseline SPU derivation is infallible");
        Self {
            technology,
            spu,
            spus: 64,
            snu: SnuConfig::default(),
            dram: CryoDramBlock::blade_baseline(),
            datalink: Datalink::paper_peak(),
            dram_latency: TimeInterval::from_ns(30.0),
        }
    }

    /// Builds a custom blade.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for zero or non-square SPU
    /// counts (the torus must be rectangular; we require a power of two
    /// per side up to 10×10 per the interposer-stitching limit).
    pub fn new(
        technology: Technology,
        spu_config: SpuConfig,
        spus: u32,
        snu: SnuConfig,
        dram: CryoDramBlock,
        datalink: Datalink,
    ) -> Result<Self, ArchError> {
        if spus == 0 || spus > 100 {
            return Err(ArchError::InvalidConfig {
                reason: format!("{spus} SPUs outside 1..=100 (interposer stitching limit)"),
            });
        }
        let spu = Spu::derive(&technology, spu_config)?;
        Ok(Self {
            technology,
            spu,
            spus,
            snu,
            dram,
            datalink,
            dram_latency: TimeInterval::from_ns(30.0),
        })
    }

    /// Number of SPUs.
    #[must_use]
    pub fn spus(&self) -> u32 {
        self.spus
    }

    /// The per-SPU descriptor.
    #[must_use]
    pub fn spu(&self) -> &Spu {
        &self.spu
    }

    /// SNU configuration.
    #[must_use]
    pub fn snu(&self) -> &SnuConfig {
        &self.snu
    }

    /// Cryo-DRAM block.
    #[must_use]
    pub fn dram(&self) -> &CryoDramBlock {
        &self.dram
    }

    /// The main-memory datalink.
    #[must_use]
    pub fn datalink(&self) -> &Datalink {
        &self.datalink
    }

    /// Technology the blade is built in.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Overrides the cryo-DRAM access latency (Fig. 7a sweep).
    #[must_use]
    pub fn with_dram_latency(mut self, latency: TimeInterval) -> Self {
        self.dram_latency = latency;
        self
    }

    /// Total cryo-DRAM capacity behind the blade's datalink (the serving
    /// simulator's KV-cache budget, before subtracting weights).
    #[must_use]
    pub fn total_dram_bytes(&self) -> u64 {
        self.dram.capacity_bytes()
    }

    /// Main-memory bandwidth available per SPU at the baseline datalink.
    #[must_use]
    pub fn dram_bandwidth_per_spu(&self) -> Bandwidth {
        self.datalink
            .per_spu_bandwidth(self.spus)
            .expect("spus > 0 by construction")
    }

    /// Blade-level torus topology.
    #[must_use]
    pub fn torus(&self) -> Torus {
        let side = (self.spus as f64).sqrt().round() as usize;
        Torus::new(side.max(1), (self.spus as usize).div_ceil(side.max(1)))
            .expect("non-zero by construction")
    }

    /// NoC simulator configuration matching this blade.
    #[must_use]
    pub fn noc_config(&self) -> NocConfig {
        let switch = HierarchicalSwitch::blade_baseline();
        NocConfig {
            link_bytes_per_s: switch.port_bandwidth().bytes_per_s(),
            router_delay_ps: switch.traversal_ps(),
            wire_delay_ps: 12,
        }
    }

    /// The per-SPU [`Accelerator`] view consumed by the performance model.
    ///
    /// The shared L2 exposes its full capacity (it is blade-shared and XY
    /// addressed); DRAM exposes the per-SPU capacity share and the
    /// baseline per-SPU datalink bandwidth.
    ///
    /// # Panics
    ///
    /// Never panics for blades built through the public constructors.
    #[must_use]
    pub fn accelerator(&self) -> Accelerator {
        let spu = &self.spu;
        let hierarchy = MemoryHierarchy::new(vec![
            MemoryLevel {
                kind: LevelKind::RegisterFile,
                capacity_bytes: spu.config().rf_capacity_bytes,
                bandwidth: spu.register_file().read_bandwidth(),
                latency: spu.rf_latency(),
                energy_per_byte: Energy::from_fj(1.0),
                transfer: TransferModel::jsram(),
            },
            MemoryLevel {
                kind: LevelKind::L1,
                capacity_bytes: spu.config().l1_capacity_bytes,
                bandwidth: spu.l1_bandwidth(),
                latency: spu.l1_latency(),
                energy_per_byte: Energy::from_fj(5.0),
                transfer: TransferModel::jsram(),
            },
            MemoryLevel {
                kind: LevelKind::L2,
                capacity_bytes: self.snu.l2_capacity_bytes,
                bandwidth: self.snu.l2_bandwidth_per_spu,
                latency: self.snu.l2_latency,
                energy_per_byte: Energy::from_fj(50.0),
                transfer: TransferModel::jsram(),
            },
            MemoryLevel {
                kind: LevelKind::MainMemory,
                capacity_bytes: self.dram.capacity_bytes() / u64::from(self.spus),
                bandwidth: self.dram_bandwidth_per_spu(),
                latency: self.dram_latency,
                energy_per_byte: Energy::from_pj(1.0),
                transfer: TransferModel::cryo_dram(),
            },
        ])
        .expect("blade hierarchy is ordered by construction");
        Accelerator {
            name: "SPU".to_owned(),
            peak_flops: spu.peak_flops(),
            max_utilization: spu.mac_array().utilization,
            hierarchy,
        }
    }

    /// The blade's communication fabric.
    #[must_use]
    pub fn interconnect(&self) -> Fabric {
        Fabric::scd_blade()
    }

    /// Renders the Fig. 3c system-specification table.
    #[must_use]
    pub fn spec_table(&self) -> String {
        let acc = self.accelerator();
        let mut out = String::new();
        let mut row = |p: &str, v: String| out.push_str(&format!("{p:<52}{v}\n"));
        row(
            "Peak compute throughput per SPU",
            format!("{:.2} PFLOP/s (sparse)", acc.peak_flops / 1e15),
        );
        row("No. of SPUs", format!("{}", self.spus));
        row(
            "SPU L1 D-cache capacity (private)",
            format!("{} MB", self.spu.config().l1_capacity_bytes >> 20),
        );
        row(
            "Shared L2 cache capacity",
            format!(
                "{:.3} GB ({} HD JSRAM stacks in SNU)",
                self.snu.l2_capacity_bytes as f64 / (1u64 << 30) as f64,
                self.snu.l2_stacks
            ),
        );
        row(
            "Avg. main-memory bandwidth per SPU",
            format!("{}", self.dram_bandwidth_per_spu()),
        );
        row(
            "Cryo-DRAM capacity",
            format!("{} TB", self.dram.capacity_bytes() >> 40),
        );
        row(
            "Bi-directional main-memory bandwidth",
            format!("{}", self.datalink.total_bandwidth()),
        );
        row(
            "Avg. cryo-DRAM access latency (RD/WR)",
            format!("{}", self.dram_latency),
        );
        row(
            "Intra-blade reduction latency",
            format!("{}", TimeInterval::from_ns(60.0)),
        );
        row(
            "Max SPU-to-SPU bandwidth",
            format!("{}", HierarchicalSwitch::blade_baseline().port_bandwidth()),
        );
        out
    }
}

impl Default for Blade {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for Blade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SCD blade: {} SPUs, {} TB cryo-DRAM, {} datalink",
            self.spus,
            self.dram.capacity_bytes() >> 40,
            self.datalink.total_bandwidth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spec_matches_fig3c() {
        let blade = Blade::baseline();
        assert_eq!(blade.spus(), 64);
        assert!((blade.dram_bandwidth_per_spu().tbps() - 0.469).abs() < 0.01);
        assert_eq!(blade.dram().capacity_bytes(), 2 << 40);
        let t = blade.spec_table();
        for needle in ["2.46", "64", "24 MB", "3.375 GB", "2 TB", "30.00 TB/s"] {
            assert!(t.contains(needle), "missing {needle}:\n{t}");
        }
    }

    #[test]
    fn accelerator_hierarchy_is_four_levels() {
        let acc = Blade::baseline().accelerator();
        assert_eq!(acc.hierarchy.levels().len(), 4);
        assert!(acc.validate().is_ok());
        // Bandwidths strictly decrease outward.
        let bws: Vec<f64> = acc
            .hierarchy
            .levels()
            .iter()
            .map(|l| l.bandwidth.bytes_per_s())
            .collect();
        assert!(bws.windows(2).all(|w| w[0] > w[1]), "{bws:?}");
    }

    #[test]
    fn torus_is_8x8() {
        let t = Blade::baseline().torus();
        assert_eq!((t.width(), t.height()), (8, 8));
    }

    #[test]
    fn interposer_limit_enforced() {
        let r = Blade::new(
            Technology::scd_nbtin(),
            SpuConfig::default(),
            101,
            SnuConfig::default(),
            CryoDramBlock::blade_baseline(),
            Datalink::paper_peak(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn dram_latency_override() {
        let blade = Blade::baseline().with_dram_latency(TimeInterval::from_ns(100.0));
        let acc = blade.accelerator();
        assert!((acc.dram_latency().ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn noc_config_uses_blade_switch() {
        let cfg = Blade::baseline().noc_config();
        assert!((cfg.link_bytes_per_s - 73.3e12).abs() < 1e6);
        assert!(cfg.router_delay_ps > 100);
    }
}
