//! Discrete-event simulation of the blade torus.
//!
//! Virtual-cut-through semantics: a packet occupies each link for its
//! serialization time; links are shared resources with FIFO availability.
//! Router traversal adds a fixed pipeline delay. This captures link
//! contention and multi-hop latency — the effects the analytical
//! communication model in `optimus` must agree with.

use crate::error::NocError;
use crate::topology::{Direction, NodeId, Torus};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulated time in picoseconds.
pub type Ps = u64;

/// Link/router parameters for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Per-link bandwidth in bytes per second.
    pub link_bytes_per_s: f64,
    /// Router pipeline traversal delay in picoseconds.
    pub router_delay_ps: Ps,
    /// Wire time-of-flight per hop in picoseconds.
    pub wire_delay_ps: Ps,
}

impl NocConfig {
    /// Blade baseline from Fig. 3c: 73.3 TB/s chip-to-chip links, a few
    /// 30 GHz router cycles of pipeline, ~1 mm hop wires.
    #[must_use]
    pub fn blade_baseline() -> Self {
        Self {
            link_bytes_per_s: 73.3e12,
            router_delay_ps: 133, // 4 cycles at 30 GHz
            wire_delay_ps: 12,    // ~1.2 mm at c/3
        }
    }

    /// Serialization time of `bytes` on one link, in ps (≥ 1).
    #[must_use]
    pub fn serialization_ps(&self, bytes: f64) -> Ps {
        ((bytes / self.link_bytes_per_s) * 1e12).ceil().max(1.0) as Ps
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::blade_baseline()
    }
}

/// A message to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Injection time (ps).
    pub inject_at: Ps,
}

/// Delivery record for a completed message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Index of the message in injection order.
    pub message: usize,
    /// Arrival time at the destination ejection port (ps).
    pub arrived_at: Ps,
    /// End-to-end latency (ps).
    pub latency_ps: Ps,
    /// Hops traversed.
    pub hops: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: Ps,
    seq: usize,
}

#[derive(Debug, Clone)]
struct InFlight {
    message: usize,
    at: NodeId,
    dst: NodeId,
    bytes: f64,
    injected: Ps,
    hops: usize,
}

/// The discrete-event torus simulator.
#[derive(Debug)]
pub struct TorusSim {
    torus: Torus,
    config: NocConfig,
    /// Next-free time per directed link (node index, direction).
    link_free: HashMap<(usize, Direction), Ps>,
    queue: BinaryHeap<Reverse<(EventKey, usize)>>,
    in_flight: Vec<InFlight>,
    deliveries: Vec<Delivery>,
    seq: usize,
}

impl TorusSim {
    /// Creates a simulator over `torus` with `config`.
    #[must_use]
    pub fn new(torus: Torus, config: NocConfig) -> Self {
        Self {
            torus,
            config,
            link_free: HashMap::new(),
            queue: BinaryHeap::new(),
            in_flight: Vec::new(),
            deliveries: Vec::new(),
            seq: 0,
        }
    }

    /// Topology under simulation.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Injects a message.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNode`] for out-of-range endpoints or
    /// [`NocError::InvalidConfig`] for non-positive sizes.
    pub fn inject(&mut self, msg: Message) -> Result<usize, NocError> {
        self.torus.check(msg.src)?;
        self.torus.check(msg.dst)?;
        if msg.bytes <= 0.0 {
            return Err(NocError::InvalidConfig {
                reason: "message size must be positive".to_owned(),
            });
        }
        let id = self.in_flight.len();
        self.in_flight.push(InFlight {
            message: id,
            at: msg.src,
            dst: msg.dst,
            bytes: msg.bytes,
            injected: msg.inject_at,
            hops: 0,
        });
        self.push_event(msg.inject_at, id);
        Ok(id)
    }

    fn push_event(&mut self, time: Ps, flight: usize) {
        let key = EventKey {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.queue.push(Reverse((key, flight)));
    }

    /// Runs to completion; returns deliveries in completion order.
    pub fn run(&mut self) -> &[Delivery] {
        while let Some(Reverse((key, fid))) = self.queue.pop() {
            let now = key.time;
            let flight = self.in_flight[fid].clone();
            if flight.at == flight.dst {
                self.deliveries.push(Delivery {
                    message: flight.message,
                    arrived_at: now,
                    latency_ps: now - flight.injected,
                    hops: flight.hops,
                });
                continue;
            }
            let dir = self.torus.route(flight.at, flight.dst);
            let link = (self.torus.index(flight.at), dir);
            let free = self.link_free.get(&link).copied().unwrap_or(0);
            let start = now.max(free);
            let ser = self.config.serialization_ps(flight.bytes);
            let done = start + ser;
            self.link_free.insert(link, done);
            let arrive = done + self.config.router_delay_ps + self.config.wire_delay_ps;
            let next = self.torus.neighbor(flight.at, dir);
            let f = &mut self.in_flight[fid];
            f.at = next;
            f.hops += 1;
            self.push_event(arrive, fid);
        }
        &self.deliveries
    }

    /// Deliveries recorded so far.
    #[must_use]
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Latest delivery time (makespan) in ps, 0 if nothing delivered.
    #[must_use]
    pub fn makespan_ps(&self) -> Ps {
        self.deliveries
            .iter()
            .map(|d| d.arrived_at)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> TorusSim {
        TorusSim::new(Torus::blade_8x8(), NocConfig::blade_baseline())
    }

    #[test]
    fn single_hop_latency_decomposes() {
        let mut s = sim();
        let cfg = NocConfig::blade_baseline();
        s.inject(Message {
            src: NodeId::new(0, 0),
            dst: NodeId::new(1, 0),
            bytes: 73.3, // 1 ps serialization
            inject_at: 0,
        })
        .unwrap();
        let d = s.run()[0];
        assert_eq!(d.hops, 1);
        assert_eq!(
            d.latency_ps,
            cfg.serialization_ps(73.3) + cfg.router_delay_ps + cfg.wire_delay_ps
        );
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut s = sim();
        s.inject(Message {
            src: NodeId::new(0, 0),
            dst: NodeId::new(4, 4),
            bytes: 1024.0,
            inject_at: 0,
        })
        .unwrap();
        let d = s.run()[0];
        assert_eq!(d.hops, 8);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut s = sim();
        // Two equal messages over the same first link.
        for _ in 0..2 {
            s.inject(Message {
                src: NodeId::new(0, 0),
                dst: NodeId::new(1, 0),
                bytes: 73.3e3, // 1000 ps serialization
                inject_at: 0,
            })
            .unwrap();
        }
        let ds: Vec<_> = s.run().to_vec();
        let mut times: Vec<_> = ds.iter().map(|d| d.arrived_at).collect();
        times.sort_unstable();
        let wait = times[1] - times[0];
        // One serialization interval (±1 ps of ceil rounding).
        assert!(
            (1000..=1001).contains(&wait),
            "second message should wait one serialization, got {wait}"
        );
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut s = sim();
        s.inject(Message {
            src: NodeId::new(0, 0),
            dst: NodeId::new(1, 0),
            bytes: 73.3e3,
            inject_at: 0,
        })
        .unwrap();
        s.inject(Message {
            src: NodeId::new(0, 1),
            dst: NodeId::new(1, 1),
            bytes: 73.3e3,
            inject_at: 0,
        })
        .unwrap();
        let ds: Vec<_> = s.run().to_vec();
        assert_eq!(ds[0].arrived_at, ds[1].arrived_at);
    }

    #[test]
    fn self_message_delivers_immediately() {
        let mut s = sim();
        s.inject(Message {
            src: NodeId::new(2, 2),
            dst: NodeId::new(2, 2),
            bytes: 64.0,
            inject_at: 42,
        })
        .unwrap();
        let d = s.run()[0];
        assert_eq!(d.latency_ps, 0);
        assert_eq!(d.arrived_at, 42);
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn invalid_injections_rejected() {
        let mut s = sim();
        assert!(s
            .inject(Message {
                src: NodeId::new(8, 0),
                dst: NodeId::new(0, 0),
                bytes: 1.0,
                inject_at: 0,
            })
            .is_err());
        assert!(s
            .inject(Message {
                src: NodeId::new(0, 0),
                dst: NodeId::new(0, 0),
                bytes: 0.0,
                inject_at: 0,
            })
            .is_err());
    }
}
