//! Continuous-batching serving simulator: dynamic traffic on top of the
//! per-request estimator.
//!
//! The paper's batching study (§VI, Fig. 7 inset b) answers a *static*
//! capacity question — the largest batch within a per-token budget. A
//! serving deployment faces a *dynamic* one: requests arrive over time,
//! must be admitted against finite KV-cache capacity, and user experience
//! is set by tail latency, not the mean. This module closes that gap with
//! an iteration-level simulator in the style of continuous-batching
//! engines (Orca, vLLM):
//!
//! * [`TraceConfig`] synthesizes a seeded request trace — Poisson
//!   arrivals, sampled prompt/output lengths — that is deterministic per
//!   seed.
//! * [`ServingSimulator`] replays a trace against an
//!   [`InferenceEstimator`]: each iteration admits waiting requests FCFS
//!   while the grown KV cache fits [`ServingConfig::kv_capacity_bytes`],
//!   prices the joint prefill + decode step with the roofline cost model,
//!   and preempts (evicts) the youngest request when growth overflows
//!   capacity, vLLM-recompute style.
//! * [`ServingReport`] carries TTFT/TPOT/latency percentiles, throughput,
//!   goodput and eviction counts; [`ServingSimulator::slo_frontier`]
//!   sweeps arrival rates into an SLO-vs-throughput frontier.
//!
//! Replay is exactly reproducible: [`ServingSimulator::replay`] builds
//! its iteration-cost table on rayon workers while
//! [`ServingSimulator::replay_serial`] builds the identical table on one
//! thread, and the two reports are bit-identical (enforced by the
//! `parallel_equivalence` suite, like every other parallel path in this
//! workspace).
//!
//! # Examples
//!
//! ```
//! use llm_workload::{KvConvention, ModelZoo, Parallelism};
//! use optimus::serving::{ServingConfig, ServingSimulator, TraceConfig};
//! use optimus::InferenceEstimator;
//! use scd_arch::Blade;
//! use scd_tech::units::Bandwidth;
//!
//! # fn main() -> Result<(), optimus::OptimusError> {
//! let blade = Blade::baseline();
//! let est = InferenceEstimator::new(
//!     blade.accelerator().with_dram_bandwidth(Bandwidth::from_tbps(16.0)),
//!     blade.interconnect(),
//! );
//! let model = ModelZoo::llama2_7b();
//! let par = Parallelism::new(1, 1, 1)?;
//! let trace = TraceConfig {
//!     seed: 7,
//!     requests: 8,
//!     arrival_rate_per_s: 50.0,
//!     prompt_tokens: (32, 64),
//!     output_tokens: (8, 16),
//! }
//! .synthesize()?;
//! let sim = ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(4))?;
//! let report = sim.replay(&trace)?;
//! assert_eq!(report.completed, 8);
//! assert!(report.ttft.p99 >= report.ttft.p50);
//! # Ok(())
//! # }
//! ```

use crate::error::OptimusError;
use crate::inference::InferenceEstimator;
use llm_workload::kvcache::{KvCache, KvConvention};
use llm_workload::model::TransformerConfig;
use llm_workload::parallelism::Parallelism;
use llm_workload::taskgraph::weights_per_unit_bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Stable request id (trace order).
    pub id: u32,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// Prompt length (tokens).
    pub prompt_tokens: u32,
    /// Generation length (tokens).
    pub output_tokens: u32,
}

/// Synthetic-trace generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed; traces are deterministic per seed.
    pub seed: u64,
    /// Number of requests.
    pub requests: u32,
    /// Poisson arrival rate (requests/s). `f64::INFINITY` collapses every
    /// arrival to t = 0 (the static burst used for degenerate-case
    /// validation against the static scheduler).
    pub arrival_rate_per_s: f64,
    /// Inclusive prompt-length range (tokens), sampled uniformly.
    pub prompt_tokens: (u32, u32),
    /// Inclusive output-length range (tokens), sampled uniformly.
    pub output_tokens: (u32, u32),
}

impl TraceConfig {
    /// A burst trace: `requests` identical I/O-shaped requests all
    /// arriving at t = 0 (the degenerate case that must reproduce the
    /// static scheduler's operating point).
    #[must_use]
    pub fn burst(requests: u32, prompt: u32, output: u32) -> Self {
        Self {
            seed: 0,
            requests,
            arrival_rate_per_s: f64::INFINITY,
            prompt_tokens: (prompt, prompt),
            output_tokens: (output, output),
        }
    }

    /// Synthesizes the trace: exponential inter-arrival gaps (inverse-CDF
    /// sampling) and uniform prompt/output lengths, all drawn from one
    /// seeded generator so the trace is a pure function of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for zero requests, an empty or
    /// zero-based token range, or a non-positive arrival rate.
    pub fn synthesize(&self) -> Result<Vec<RequestSpec>, OptimusError> {
        if self.requests == 0 {
            return Err(OptimusError::Serving {
                reason: "trace needs at least one request".to_owned(),
            });
        }
        for (name, (lo, hi)) in [
            ("prompt", self.prompt_tokens),
            ("output", self.output_tokens),
        ] {
            if lo == 0 || lo > hi {
                return Err(OptimusError::Serving {
                    reason: format!("{name} range {lo}..={hi} must be non-empty and ≥ 1"),
                });
            }
        }
        if self.arrival_rate_per_s.is_nan() || self.arrival_rate_per_s <= 0.0 {
            return Err(OptimusError::Serving {
                reason: format!("arrival rate {} must be positive", self.arrival_rate_per_s),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clock = 0.0f64;
        let mut trace = Vec::with_capacity(self.requests as usize);
        for id in 0..self.requests {
            if self.arrival_rate_per_s.is_finite() {
                // Exponential gap via inverse CDF; u ∈ [0, 1) keeps the
                // argument of ln strictly positive.
                let u: f64 = rng.gen();
                clock += -(1.0 - u).ln() / self.arrival_rate_per_s;
            }
            let prompt_tokens = rng.gen_range(self.prompt_tokens.0..=self.prompt_tokens.1);
            let output_tokens = rng.gen_range(self.output_tokens.0..=self.output_tokens.1);
            trace.push(RequestSpec {
                id,
                arrival_s: clock,
                prompt_tokens,
                output_tokens,
            });
        }
        Ok(trace)
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Maximum concurrent sequences in the decode batch.
    pub max_batch: u32,
    /// KV-cache capacity (bytes, whole system) requests are admitted
    /// against.
    pub kv_capacity_bytes: f64,
    /// Head-count convention for KV sizing. Physical deployments should
    /// use [`KvConvention::Gqa`].
    pub kv_convention: KvConvention,
    /// Time-to-first-token SLO (s), used for goodput accounting.
    pub ttft_slo_s: f64,
    /// Time-per-output-token SLO (s), used for goodput accounting.
    pub tpot_slo_s: f64,
    /// KV-length quantization of the iteration-cost table (tokens). 1
    /// prices every cache length exactly; larger buckets shrink the table.
    pub kv_bucket_tokens: u32,
}

impl ServingConfig {
    /// A capacity-unconstrained configuration (KV admission never binds):
    /// useful for studying pure batching dynamics and for the degenerate
    /// static-scheduler check. Prices costs exactly
    /// (`kv_bucket_tokens = 1`) with generous default SLOs.
    #[must_use]
    pub fn unconstrained(max_batch: u32) -> Self {
        Self {
            max_batch,
            kv_capacity_bytes: f64::MAX,
            kv_convention: KvConvention::Gqa,
            ttft_slo_s: 10.0,
            tpot_slo_s: 0.1,
            kv_bucket_tokens: 1,
        }
    }

    /// Derives the KV capacity from the estimator's accelerator: the
    /// main-memory capacity across all `par` units minus the resident
    /// weights (at the estimator's working precision).
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] if the weights alone exceed the
    /// system's main memory.
    pub fn for_system(
        estimator: &InferenceEstimator,
        model: &TransformerConfig,
        par: &Parallelism,
        max_batch: u32,
    ) -> Result<Self, OptimusError> {
        let units = f64::from(par.units());
        let capacity = estimator.accelerator().dram_capacity_bytes() as f64 * units;
        let weights = weights_per_unit_bytes(model, par, estimator.precision()) * units;
        let kv_capacity_bytes = capacity - weights;
        if kv_capacity_bytes <= 0.0 {
            return Err(OptimusError::Serving {
                reason: format!(
                    "{} weights ({:.0} GB) exceed system memory ({:.0} GB)",
                    model.name,
                    weights / 1e9,
                    capacity / 1e9
                ),
            });
        }
        Ok(Self {
            max_batch,
            kv_capacity_bytes,
            kv_convention: KvConvention::Gqa,
            ttft_slo_s: 10.0,
            tpot_slo_s: 0.1,
            kv_bucket_tokens: 32,
        })
    }

    fn validate(&self) -> Result<(), OptimusError> {
        if self.max_batch == 0 || self.kv_bucket_tokens == 0 {
            return Err(OptimusError::Serving {
                reason: "max_batch and kv_bucket_tokens must be ≥ 1".to_owned(),
            });
        }
        if self.kv_capacity_bytes.is_nan() || self.kv_capacity_bytes <= 0.0 {
            return Err(OptimusError::Serving {
                reason: format!(
                    "KV capacity {} bytes must be positive",
                    self.kv_capacity_bytes
                ),
            });
        }
        if self.ttft_slo_s.is_nan()
            || self.ttft_slo_s <= 0.0
            || self.tpot_slo_s.is_nan()
            || self.tpot_slo_s <= 0.0
        {
            return Err(OptimusError::Serving {
                reason: "SLO targets must be positive".to_owned(),
            });
        }
        Ok(())
    }
}

/// Nearest-rank percentiles of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    fn of(values: &mut [f64]) -> Self {
        values.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            if values.is_empty() {
                return 0.0;
            }
            let rank = (q * values.len() as f64).ceil() as usize;
            values[rank.clamp(1, values.len()) - 1]
        };
        Self {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
        }
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests in the trace.
    pub requests: u32,
    /// Requests that ran to completion (always equals `requests`: the
    /// simulator drains its queue).
    pub completed: u32,
    /// Preemptions: a running request was evicted because the grown KV
    /// cache no longer fit, and restarted later (recompute-style).
    pub evictions: u32,
    /// Generated tokens discarded by evictions (recomputed later).
    pub wasted_tokens: u64,
    /// Time from first arrival to last completion (s).
    pub makespan_s: f64,
    /// Useful generated tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// Throughput counting only requests that met both SLOs.
    pub goodput_tok_s: f64,
    /// Fraction of requests meeting both the TTFT and TPOT SLOs.
    pub slo_attainment: f64,
    /// Decode-time-weighted mean batch occupancy.
    pub mean_batch: f64,
    /// Total decode time across all iterations (s).
    pub decode_time_s: f64,
    /// Number of decode iterations.
    pub decode_iterations: u64,
    /// Time-to-first-token percentiles (s).
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles (s).
    pub tpot: Percentiles,
    /// End-to-end request-latency percentiles (s).
    pub latency: Percentiles,
}

impl ServingReport {
    /// Mean decode-iteration cost (s) — the dynamic analogue of the
    /// static scheduler's `per_token_s`.
    #[must_use]
    pub fn mean_step_s(&self) -> f64 {
        if self.decode_iterations == 0 {
            0.0
        } else {
            self.decode_time_s / self.decode_iterations as f64
        }
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} done, {} evictions; {:.0} tok/s ({:.0} goodput); \
             TTFT p50/p95/p99 {:.0}/{:.0}/{:.0} ms; TPOT {:.1}/{:.1}/{:.1} ms",
            self.completed,
            self.requests,
            self.evictions,
            self.throughput_tok_s,
            self.goodput_tok_s,
            self.ttft.p50 * 1e3,
            self.ttft.p95 * 1e3,
            self.ttft.p99 * 1e3,
            self.tpot.p50 * 1e3,
            self.tpot.p95 * 1e3,
            self.tpot.p99 * 1e3
        )
    }
}

/// One point of the SLO-vs-throughput frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Offered arrival rate (requests/s).
    pub arrival_rate_per_s: f64,
    /// The replay outcome at that rate.
    pub report: ServingReport,
}

/// Iteration-cost lookup: decode cost per (batch, bucketized KV length)
/// and batch-1 prefill cost per bucketized prompt length. Built once per
/// replay — in parallel or serially, bit-identically — so the simulation
/// loop itself is pure table lookups.
#[derive(Debug)]
struct CostTable {
    bucket: u32,
    max_kv_idx: usize,
    /// `decode[(b-1) * max_kv_idx + (idx-1)]` = decode step cost at batch
    /// `b`, KV length `idx * bucket`.
    decode: Vec<f64>,
    /// `prefill[idx-1]` = batch-1 prefill cost at prompt `idx * bucket`.
    prefill: Vec<f64>,
}

impl CostTable {
    fn decode_cost(&self, batch: u32, kv_len: u32) -> f64 {
        let idx = (kv_len.div_ceil(self.bucket) as usize).max(1);
        self.decode[(batch as usize - 1) * self.max_kv_idx + (idx - 1)]
    }

    fn prefill_cost(&self, prompt: u32) -> f64 {
        let idx = (prompt.div_ceil(self.bucket) as usize).max(1);
        self.prefill[idx - 1]
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    /// Index into the (arrival-sorted) trace.
    idx: usize,
    /// Cache length: prompt plus tokens generated so far.
    kv_len: u32,
    /// Tokens generated so far (this attempt).
    produced: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Outcome {
    first_token_s: Option<f64>,
    completion_s: Option<f64>,
}

/// Continuous-batching simulator over one estimator + model + plan.
#[derive(Debug)]
pub struct ServingSimulator<'a> {
    estimator: &'a InferenceEstimator,
    model: &'a TransformerConfig,
    par: &'a Parallelism,
    config: ServingConfig,
    /// KV bytes per cached token per sequence, whole system.
    kv_bytes_per_token: f64,
}

impl<'a> ServingSimulator<'a> {
    /// Creates a simulator; validates the configuration and model.
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for invalid configurations and
    /// propagates model/parallelism validation failures.
    pub fn new(
        estimator: &'a InferenceEstimator,
        model: &'a TransformerConfig,
        par: &'a Parallelism,
        config: ServingConfig,
    ) -> Result<Self, OptimusError> {
        config.validate()?;
        model.validate().map_err(OptimusError::from)?;
        par.check_model(model).map_err(OptimusError::from)?;
        let kv_bytes_per_token = KvCache {
            batch: 1,
            seq_len: 1,
            precision: estimator.precision(),
        }
        .bytes(model, config.kv_convention);
        Ok(Self {
            estimator,
            model,
            par,
            config,
            kv_bytes_per_token,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Replays the trace with the iteration-cost table built on rayon
    /// workers. Bit-identical to [`Self::replay_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimusError::Serving`] for an empty trace or a request
    /// that can never fit the KV capacity; propagates estimation errors.
    pub fn replay(&self, trace: &[RequestSpec]) -> Result<ServingReport, OptimusError> {
        let table = self.cost_table(trace, true)?;
        self.run(trace, &table)
    }

    /// Serial reference implementation of [`Self::replay`], kept as the
    /// ground truth for the rayon-equivalence test in CI.
    ///
    /// # Errors
    ///
    /// As for [`Self::replay`].
    pub fn replay_serial(&self, trace: &[RequestSpec]) -> Result<ServingReport, OptimusError> {
        let table = self.cost_table(trace, false)?;
        self.run(trace, &table)
    }

    /// Sweeps arrival rates into an SLO-vs-throughput frontier. Each rate
    /// re-synthesizes `base` with the same seed and replays it; rates are
    /// replayed concurrently (each replay is independent and
    /// deterministic, so the frontier is too).
    ///
    /// # Errors
    ///
    /// As for [`Self::replay`], plus trace-synthesis failures.
    pub fn slo_frontier(
        &self,
        base: &TraceConfig,
        rates: &[f64],
    ) -> Result<Vec<FrontierPoint>, OptimusError> {
        rates
            .par_iter()
            .map(|&rate| {
                let trace = TraceConfig {
                    arrival_rate_per_s: rate,
                    ..*base
                }
                .synthesize()?;
                Ok(FrontierPoint {
                    arrival_rate_per_s: rate,
                    report: self.replay_serial(&trace)?,
                })
            })
            .collect()
    }

    fn kv_bytes(&self, tokens_cached: u64) -> f64 {
        tokens_cached as f64 * self.kv_bytes_per_token
    }

    /// Builds the iteration-cost table covering every (batch, KV-bucket)
    /// state the trace can reach.
    fn cost_table(&self, trace: &[RequestSpec], parallel: bool) -> Result<CostTable, OptimusError> {
        if trace.is_empty() {
            return Err(OptimusError::Serving {
                reason: "trace is empty".to_owned(),
            });
        }
        for r in trace {
            if r.prompt_tokens == 0 || r.output_tokens == 0 || !r.arrival_s.is_finite() {
                return Err(OptimusError::Serving {
                    reason: format!(
                        "request {} is degenerate (prompt {}, output {}, arrival {})",
                        r.id, r.prompt_tokens, r.output_tokens, r.arrival_s
                    ),
                });
            }
            let full = self.kv_bytes(u64::from(r.prompt_tokens + r.output_tokens));
            if full > self.config.kv_capacity_bytes {
                return Err(OptimusError::Serving {
                    reason: format!(
                        "request {} needs {:.1} GB of KV at full length but capacity is {:.1} GB",
                        r.id,
                        full / 1e9,
                        self.config.kv_capacity_bytes / 1e9
                    ),
                });
            }
        }
        let bucket = self.config.kv_bucket_tokens;
        let max_kv = trace
            .iter()
            .map(|r| r.prompt_tokens + r.output_tokens - 1)
            .max()
            .expect("trace non-empty");
        let max_prompt = trace
            .iter()
            .map(|r| r.prompt_tokens)
            .max()
            .expect("trace non-empty");
        let max_kv_idx = max_kv.div_ceil(bucket) as usize;
        let max_prompt_idx = max_prompt.div_ceil(bucket) as usize;
        let max_batch = self.config.max_batch.min(trace.len() as u32) as usize;

        let decode_cell = |cell: usize| -> Result<f64, OptimusError> {
            let batch = (cell / max_kv_idx) as u32 + 1;
            let kv = (cell % max_kv_idx + 1) as u32 * bucket;
            self.estimator
                .decode_step_time(self.model, self.par, batch, kv)
        };
        let prefill_cell = |idx: usize| -> Result<f64, OptimusError> {
            self.estimator
                .prefill_time(self.model, self.par, 1, (idx + 1) as u32 * bucket)
        };

        let decode_cells = max_batch * max_kv_idx;
        let (decode, prefill) = if parallel {
            (
                (0..decode_cells)
                    .into_par_iter()
                    .map(decode_cell)
                    .collect::<Result<Vec<_>, _>>()?,
                (0..max_prompt_idx)
                    .into_par_iter()
                    .map(prefill_cell)
                    .collect::<Result<Vec<_>, _>>()?,
            )
        } else {
            (
                (0..decode_cells)
                    .map(decode_cell)
                    .collect::<Result<Vec<_>, _>>()?,
                (0..max_prompt_idx)
                    .map(prefill_cell)
                    .collect::<Result<Vec<_>, _>>()?,
            )
        };
        Ok(CostTable {
            bucket,
            max_kv_idx,
            decode,
            prefill,
        })
    }

    /// The simulation loop proper: deterministic, shared by both replay
    /// paths, driven entirely by table lookups.
    fn run(&self, trace: &[RequestSpec], table: &CostTable) -> Result<ServingReport, OptimusError> {
        // Arrival-sorted view (stable on ties by trace order).
        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by(|&a, &b| {
            trace[a]
                .arrival_s
                .total_cmp(&trace[b].arrival_s)
                .then(a.cmp(&b))
        });
        let mut queue: VecDeque<usize> = order.into_iter().collect();
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes = vec![Outcome::default(); trace.len()];

        let mut clock = trace.iter().map(|r| r.arrival_s).fold(f64::MAX, f64::min);
        let mut completed = 0u32;
        let mut evictions = 0u32;
        let mut wasted_tokens = 0u64;
        let mut decode_time_s = 0.0f64;
        let mut decode_iterations = 0u64;
        let mut batch_time_weighted = 0.0f64;

        while completed < trace.len() as u32 {
            // Idle: jump to the next arrival.
            if running.is_empty() {
                if let Some(&next) = queue.front() {
                    clock = clock.max(trace[next].arrival_s);
                }
            }

            // FCFS admission against batch slots and projected KV growth
            // (every running sequence appends one token this iteration).
            let mut projected: u64 = running.iter().map(|r| u64::from(r.kv_len) + 1).sum();
            let mut admitted: Vec<usize> = Vec::new();
            while let Some(&idx) = queue.front() {
                if trace[idx].arrival_s > clock
                    || running.len() + admitted.len() >= self.config.max_batch as usize
                {
                    break;
                }
                let candidate = u64::from(trace[idx].prompt_tokens) + 1;
                if self.kv_bytes(projected + candidate) > self.config.kv_capacity_bytes {
                    break;
                }
                projected += candidate;
                admitted.push(idx);
                queue.pop_front();
            }
            let mut step_cost = 0.0f64;
            for &idx in &admitted {
                step_cost += table.prefill_cost(trace[idx].prompt_tokens);
                running.push(Running {
                    idx,
                    kv_len: trace[idx].prompt_tokens,
                    produced: 0,
                });
            }

            // Preempt youngest-first while the grown cache cannot fit.
            // The head-of-line request always survives (its full-length
            // cache fits by validation), so the simulation cannot
            // livelock.
            while running.len() > 1 {
                let grown: u64 = running.iter().map(|r| u64::from(r.kv_len) + 1).sum();
                if self.kv_bytes(grown) <= self.config.kv_capacity_bytes {
                    break;
                }
                let victim = running.pop().expect("len > 1");
                evictions += 1;
                wasted_tokens += u64::from(victim.produced);
                queue.push_front(victim.idx);
            }

            debug_assert!(!running.is_empty(), "queue drained with work pending");
            let batch = running.len() as u32;
            let kv_sum: u64 = running.iter().map(|r| u64::from(r.kv_len)).sum();
            let kv_mean = kv_sum.div_ceil(u64::from(batch)) as u32;
            let decode_cost = table.decode_cost(batch, kv_mean);
            step_cost += decode_cost;
            decode_time_s += decode_cost;
            decode_iterations += 1;
            batch_time_weighted += decode_cost * f64::from(batch);
            clock += step_cost;

            // Every running sequence emits one token; retire finishers.
            let mut still_running = Vec::with_capacity(running.len());
            for mut r in running.drain(..) {
                r.produced += 1;
                r.kv_len += 1;
                let out = &mut outcomes[r.idx];
                if out.first_token_s.is_none() {
                    out.first_token_s = Some(clock);
                }
                if r.produced >= trace[r.idx].output_tokens {
                    out.completion_s = Some(clock);
                    completed += 1;
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
        }

        // Metrics over the completed population.
        let first_arrival = trace.iter().map(|r| r.arrival_s).fold(f64::MAX, f64::min);
        let makespan_s = (clock - first_arrival).max(f64::MIN_POSITIVE);
        let mut ttft = Vec::with_capacity(trace.len());
        let mut tpot = Vec::with_capacity(trace.len());
        let mut latency = Vec::with_capacity(trace.len());
        let mut useful_tokens = 0u64;
        let mut good_tokens = 0u64;
        let mut slo_met = 0u32;
        for (r, out) in trace.iter().zip(&outcomes) {
            let first = out.first_token_s.expect("completed");
            let done = out.completion_s.expect("completed");
            let t_first = first - r.arrival_s;
            let t_rest = (done - first) / f64::from((r.output_tokens - 1).max(1));
            ttft.push(t_first);
            tpot.push(t_rest);
            latency.push(done - r.arrival_s);
            useful_tokens += u64::from(r.output_tokens);
            if t_first <= self.config.ttft_slo_s && t_rest <= self.config.tpot_slo_s {
                slo_met += 1;
                good_tokens += u64::from(r.output_tokens);
            }
        }
        Ok(ServingReport {
            requests: trace.len() as u32,
            completed,
            evictions,
            wasted_tokens,
            makespan_s,
            throughput_tok_s: useful_tokens as f64 / makespan_s,
            goodput_tok_s: good_tokens as f64 / makespan_s,
            slo_attainment: f64::from(slo_met) / trace.len() as f64,
            mean_batch: if decode_time_s > 0.0 {
                batch_time_weighted / decode_time_s
            } else {
                0.0
            },
            decode_time_s,
            decode_iterations,
            ttft: Percentiles::of(&mut ttft),
            tpot: Percentiles::of(&mut tpot),
            latency: Percentiles::of(&mut latency),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::plan_serving;
    use llm_workload::model::ModelZoo;
    use scd_arch::Blade;
    use scd_tech::units::Bandwidth;

    fn spu_estimator() -> InferenceEstimator {
        let blade = Blade::baseline();
        InferenceEstimator::new(
            blade
                .accelerator()
                .with_dram_bandwidth(Bandwidth::from_tbps(16.0)),
            blade.interconnect(),
        )
    }

    fn small_model_sim_parts() -> (InferenceEstimator, TransformerConfig, Parallelism) {
        (
            spu_estimator(),
            ModelZoo::llama2_7b(),
            Parallelism::new(1, 1, 1).unwrap(),
        )
    }

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let cfg = TraceConfig {
            seed: 42,
            requests: 64,
            arrival_rate_per_s: 10.0,
            prompt_tokens: (50, 300),
            output_tokens: (20, 200),
        };
        let a = cfg.synthesize().unwrap();
        let b = cfg.synthesize().unwrap();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        assert!(a.iter().all(|r| (50..=300).contains(&r.prompt_tokens)));
        assert!(a.iter().all(|r| (20..=200).contains(&r.output_tokens)));
        let c = TraceConfig { seed: 43, ..cfg }.synthesize().unwrap();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn burst_trace_arrives_at_zero() {
        let t = TraceConfig::burst(8, 200, 200).synthesize().unwrap();
        assert_eq!(t.len(), 8);
        assert!(t.iter().all(|r| r.arrival_s == 0.0));
        assert!(t
            .iter()
            .all(|r| r.prompt_tokens == 200 && r.output_tokens == 200));
    }

    #[test]
    fn degenerate_traces_are_typed_errors() {
        let bad = [
            TraceConfig {
                requests: 0,
                ..TraceConfig::burst(1, 10, 10)
            },
            TraceConfig {
                prompt_tokens: (0, 10),
                ..TraceConfig::burst(1, 10, 10)
            },
            TraceConfig {
                output_tokens: (20, 10),
                ..TraceConfig::burst(1, 10, 10)
            },
            TraceConfig {
                arrival_rate_per_s: 0.0,
                ..TraceConfig::burst(1, 10, 10)
            },
            TraceConfig {
                arrival_rate_per_s: -3.0,
                ..TraceConfig::burst(1, 10, 10)
            },
        ];
        for cfg in bad {
            assert!(matches!(
                cfg.synthesize(),
                Err(OptimusError::Serving { .. })
            ));
        }
    }

    #[test]
    fn burst_reproduces_static_scheduler_operating_point() {
        // All requests arrive at t=0 with the paper's I/O 200/200 shape
        // and nothing ever evicts: the simulator must run at the static
        // scheduler's chosen batch, and its mean decode-iteration cost
        // must equal the static per-token time at that batch.
        let est = spu_estimator();
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let batch = 8u32;
        let decision = plan_serving(&est, &model, &par, (200, 200), batch, 1.0).unwrap();
        let static_point = decision.chosen.unwrap();
        assert_eq!(static_point.batch, batch);

        let sim =
            ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(batch)).unwrap();
        let trace = TraceConfig::burst(batch, 200, 200).synthesize().unwrap();
        let report = sim.replay(&trace).unwrap();
        assert_eq!(report.completed, batch);
        assert_eq!(report.evictions, 0);
        assert!((report.mean_batch - f64::from(batch)).abs() < 1e-9);
        let rel =
            (report.mean_step_s() - static_point.per_token_s).abs() / static_point.per_token_s;
        assert!(
            rel < 1e-12,
            "sim step {} vs static per-token {}",
            report.mean_step_s(),
            static_point.per_token_s
        );
    }

    #[test]
    fn poisson_replay_reports_sane_tails() {
        let (est, model, par) = small_model_sim_parts();
        let sim =
            ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(8)).unwrap();
        let trace = TraceConfig {
            seed: 9,
            requests: 24,
            arrival_rate_per_s: 200.0,
            prompt_tokens: (32, 128),
            output_tokens: (8, 32),
        }
        .synthesize()
        .unwrap();
        let r = sim.replay(&trace).unwrap();
        assert_eq!(r.completed, 24);
        assert!(r.ttft.p50 > 0.0 && r.ttft.p50 <= r.ttft.p95 && r.ttft.p95 <= r.ttft.p99);
        assert!(r.tpot.p50 > 0.0 && r.tpot.p50 <= r.tpot.p95 && r.tpot.p95 <= r.tpot.p99);
        assert!(r.latency.p99 >= r.ttft.p99);
        assert!(r.throughput_tok_s > 0.0);
        assert!(r.goodput_tok_s <= r.throughput_tok_s);
        assert!((0.0..=1.0).contains(&r.slo_attainment));
        assert!(r.mean_batch >= 1.0 && r.mean_batch <= 8.0);
    }

    #[test]
    fn tight_kv_capacity_forces_evictions_but_completes() {
        let (est, model, par) = small_model_sim_parts();
        // Capacity for ~2.5 full-length requests: concurrency wants 6.
        let per_token = KvCache {
            batch: 1,
            seq_len: 1,
            precision: est.precision(),
        }
        .bytes(&model, KvConvention::Gqa);
        let config = ServingConfig {
            max_batch: 6,
            kv_capacity_bytes: per_token * f64::from(96 + 32) * 2.5,
            kv_convention: KvConvention::Gqa,
            ttft_slo_s: 10.0,
            tpot_slo_s: 0.1,
            kv_bucket_tokens: 1,
        };
        let sim = ServingSimulator::new(&est, &model, &par, config).unwrap();
        let trace = TraceConfig {
            seed: 3,
            requests: 12,
            arrival_rate_per_s: f64::INFINITY,
            prompt_tokens: (96, 96),
            output_tokens: (32, 32),
        }
        .synthesize()
        .unwrap();
        let r = sim.replay(&trace).unwrap();
        assert_eq!(r.completed, 12, "every request must finish eventually");
        assert!(r.evictions > 0, "tight capacity must preempt");
        assert!(r.wasted_tokens > 0);

        // The same workload with ample capacity evicts nothing.
        let roomy = ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(6))
            .unwrap()
            .replay(&trace)
            .unwrap();
        assert_eq!(roomy.evictions, 0);
        assert!(
            roomy.makespan_s <= r.makespan_s + 1e-12,
            "evictions cost time"
        );
    }

    #[test]
    fn oversized_request_is_a_typed_error() {
        let (est, model, par) = small_model_sim_parts();
        let per_token = KvCache {
            batch: 1,
            seq_len: 1,
            precision: est.precision(),
        }
        .bytes(&model, KvConvention::Gqa);
        let config = ServingConfig {
            kv_capacity_bytes: per_token * 100.0,
            ..ServingConfig::unconstrained(4)
        };
        let sim = ServingSimulator::new(&est, &model, &par, config).unwrap();
        let trace = TraceConfig::burst(2, 96, 32).synthesize().unwrap();
        assert!(matches!(
            sim.replay(&trace),
            Err(OptimusError::Serving { .. })
        ));
    }

    #[test]
    fn gqa_convention_admits_more_than_paper_mha() {
        // Same capacity: physical GQA sizing (8 of 128 head-pairs for
        // Llama-405B) packs far more concurrent requests than the
        // MHA-convention bookkeeping would, so the trace finishes sooner.
        let est = spu_estimator();
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let per_token_mha = KvCache {
            batch: 1,
            seq_len: 1,
            precision: est.precision(),
        }
        .bytes_mha(&model);
        let capacity = per_token_mha * 400.0 * 3.0; // three MHA requests
        let mk = |conv: KvConvention| ServingConfig {
            max_batch: 16,
            kv_capacity_bytes: capacity,
            kv_convention: conv,
            ttft_slo_s: 100.0,
            tpot_slo_s: 10.0,
            kv_bucket_tokens: 8,
        };
        let trace = TraceConfig::burst(16, 200, 16).synthesize().unwrap();
        let gqa = ServingSimulator::new(&est, &model, &par, mk(KvConvention::Gqa))
            .unwrap()
            .replay(&trace)
            .unwrap();
        let mha = ServingSimulator::new(&est, &model, &par, mk(KvConvention::PaperMha))
            .unwrap()
            .replay(&trace)
            .unwrap();
        assert!(
            gqa.mean_batch > mha.mean_batch,
            "GQA sizing must batch more: {} vs {}",
            gqa.mean_batch,
            mha.mean_batch
        );
        assert!(gqa.makespan_s < mha.makespan_s);
    }

    #[test]
    fn slo_frontier_throughput_rises_with_offered_load() {
        let (est, model, par) = small_model_sim_parts();
        let sim =
            ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(8)).unwrap();
        let base = TraceConfig {
            seed: 11,
            requests: 16,
            arrival_rate_per_s: 1.0,
            prompt_tokens: (32, 64),
            output_tokens: (8, 16),
        };
        let pts = sim.slo_frontier(&base, &[5.0, 50.0, 500.0]).unwrap();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(
                w[1].report.throughput_tok_s >= w[0].report.throughput_tok_s * 0.99,
                "throughput should not collapse as load rises below saturation"
            );
            assert!(w[1].report.ttft.p99 >= w[0].report.ttft.p99 * 0.5);
        }
        // At saturation the batch runs fuller than at a trickle.
        assert!(pts[2].report.mean_batch > pts[0].report.mean_batch);
    }

    #[test]
    fn for_system_subtracts_weights() {
        let est = spu_estimator();
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let cfg = ServingConfig::for_system(&est, &model, &par, 64).unwrap();
        let total = est.accelerator().dram_capacity_bytes() as f64 * 64.0;
        assert!(cfg.kv_capacity_bytes > 0.0 && cfg.kv_capacity_bytes < total);

        // A model too large for the system is a typed error.
        let mut huge = ModelZoo::llama_405b();
        huge.layers *= 20;
        assert!(matches!(
            ServingConfig::for_system(&est, &huge, &par, 64),
            Err(OptimusError::Serving { .. })
        ));
    }

    #[test]
    fn report_display_formats() {
        let (est, model, par) = small_model_sim_parts();
        let sim =
            ServingSimulator::new(&est, &model, &par, ServingConfig::unconstrained(2)).unwrap();
        let trace = TraceConfig::burst(2, 16, 4).synthesize().unwrap();
        let r = sim.replay(&trace).unwrap();
        let s = r.to_string();
        assert!(s.contains("TTFT") && s.contains("TPOT") && s.contains("2/2"));
    }
}
