//! Technology-independent logic netlist (the "gate-level netlist" stage of
//! Fig. 1h).
//!
//! A [`Netlist`] is a DAG of simple boolean operators produced either by a
//! block generator ([`crate::blocks`]) or by hand. The synthesis flow
//! ([`crate::flow`]) lowers it to a dual-rail PCL implementation.

use crate::error::EdaError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Boolean operator of a netlist gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicOp {
    /// Constant false / true.
    Const(bool),
    /// Identity buffer (1 input).
    Buf,
    /// Inversion (1 input).
    Not,
    /// Conjunction (≥ 2 inputs).
    And,
    /// Disjunction (≥ 2 inputs).
    Or,
    /// Parity (≥ 2 inputs).
    Xor,
    /// Majority of exactly 3 inputs.
    Maj,
    /// 2:1 multiplexer: inputs `[sel, a, b]`, output `sel ? a : b`.
    Mux,
}

impl LogicOp {
    /// Human-readable operator name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Const(false) => "CONST0",
            Self::Const(true) => "CONST1",
            Self::Buf => "BUF",
            Self::Not => "NOT",
            Self::And => "AND",
            Self::Or => "OR",
            Self::Xor => "XOR",
            Self::Maj => "MAJ",
            Self::Mux => "MUX",
        }
    }

    /// Validates an input count for this operator.
    pub(crate) fn check_arity(self, n: usize) -> Result<(), EdaError> {
        let ok = match self {
            Self::Const(_) => n == 0,
            Self::Buf | Self::Not => n == 1,
            Self::And | Self::Or | Self::Xor => n >= 2,
            Self::Maj | Self::Mux => n == 3,
        };
        if ok {
            Ok(())
        } else {
            Err(EdaError::BadArity {
                op: self.name(),
                expected: match self {
                    Self::Const(_) => "no",
                    Self::Buf | Self::Not => "exactly 1",
                    Self::And | Self::Or | Self::Xor => "at least 2",
                    Self::Maj | Self::Mux => "exactly 3",
                },
                actual: n,
            })
        }
    }

    /// Evaluates the operator over `inputs`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            Self::Const(v) => v,
            Self::Buf => inputs[0],
            Self::Not => !inputs[0],
            Self::And => inputs.iter().all(|&b| b),
            Self::Or => inputs.iter().any(|&b| b),
            Self::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            Self::Maj => inputs.iter().filter(|&&b| b).count() >= 2,
            Self::Mux => {
                if inputs[0] {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
        }
    }

    /// Word-parallel (64-pattern) evaluation.
    #[must_use]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            Self::Const(false) => 0,
            Self::Const(true) => u64::MAX,
            Self::Buf => inputs[0],
            Self::Not => !inputs[0],
            Self::And => inputs.iter().fold(u64::MAX, |a, &b| a & b),
            Self::Or => inputs.iter().fold(0, |a, &b| a | b),
            Self::Xor => inputs.iter().fold(0, |a, &b| a ^ b),
            Self::Maj => {
                (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2])
            }
            Self::Mux => (inputs[0] & inputs[1]) | (!inputs[0] & inputs[2]),
        }
    }
}

impl fmt::Display for LogicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A node in the netlist DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A primary input with its port name.
    Input {
        /// Port name.
        name: String,
    },
    /// A logic gate.
    Gate {
        /// Operator.
        op: LogicOp,
        /// Driving nodes, in operator order.
        inputs: Vec<NodeId>,
    },
}

/// A named primary output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputPort {
    /// Port name.
    pub name: String,
    /// Node whose value the port exposes.
    pub node: NodeId,
}

/// A technology-independent combinational netlist.
///
/// ```
/// use scd_eda::netlist::{LogicOp, Netlist};
///
/// let mut n = Netlist::new("toy");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let x = n.add_gate(LogicOp::Xor, vec![a, b])?;
/// n.add_output("sum", x);
/// assert_eq!(n.eval(&[true, false])?, vec![true]);
/// # Ok::<(), scd_eda::EdaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<OutputPort>,
}

impl Netlist {
    /// Creates an empty netlist with a design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a gate and returns its node id.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::BadArity`] for an invalid input count and
    /// [`EdaError::UnknownNode`] if an input id is out of range (only
    /// already-created nodes may be referenced, which also guarantees the
    /// graph stays acyclic).
    pub fn add_gate(&mut self, op: LogicOp, inputs: Vec<NodeId>) -> Result<NodeId, EdaError> {
        op.check_arity(inputs.len())?;
        for &i in &inputs {
            if i.0 >= self.nodes.len() {
                return Err(EdaError::UnknownNode { index: i.0 });
            }
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Gate { op, inputs });
        Ok(id)
    }

    /// Convenience: adds a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Gate {
            op: LogicOp::Const(value),
            inputs: Vec::new(),
        });
        id
    }

    /// Registers `node` as the primary output `name`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push(OutputPort {
            name: name.into(),
            node,
        });
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// All nodes, indexable by [`NodeId::index`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Number of gate nodes (excluding primary inputs).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Gate { .. }))
            .count()
    }

    /// Per-operator gate histogram.
    #[must_use]
    pub fn op_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for n in &self.nodes {
            if let Node::Gate { op, .. } = n {
                *h.entry(op.name()).or_insert(0) += 1;
            }
        }
        h
    }

    /// Validates the netlist: every output references a real node.
    ///
    /// (Acyclicity holds by construction: gates may only reference earlier
    /// node ids.)
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::DanglingOutput`] if an output references a
    /// non-existent node.
    pub fn validate(&self) -> Result<(), EdaError> {
        for out in &self.outputs {
            if out.node.0 >= self.nodes.len() {
                return Err(EdaError::DanglingOutput {
                    name: out.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Logic depth: longest input→output path counted in gates
    /// (buffers and inverters included, constants excluded).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Gate { op, inputs } = n {
                let base = inputs.iter().map(|x| level[x.0]).max().unwrap_or(0);
                level[i] = if matches!(op, LogicOp::Const(_)) {
                    0
                } else {
                    base + 1
                };
            }
        }
        self.outputs
            .iter()
            .map(|o| level[o.node.0])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist for one input assignment (in input
    /// declaration order), returning the outputs in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::BadArity`] if `assignment.len()` differs from
    /// the number of primary inputs.
    pub fn eval(&self, assignment: &[bool]) -> Result<Vec<bool>, EdaError> {
        if assignment.len() != self.inputs.len() {
            return Err(EdaError::BadArity {
                op: "netlist eval",
                expected: "one value per primary input",
                actual: assignment.len(),
            });
        }
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            match n {
                Node::Input { .. } => {
                    values[i] = assignment[next_input];
                    next_input += 1;
                }
                Node::Gate { op, inputs } => {
                    let args: Vec<bool> = inputs.iter().map(|x| values[x.0]).collect();
                    values[i] = op.eval(&args);
                }
            }
        }
        Ok(self.outputs.iter().map(|o| values[o.node.0]).collect())
    }

    /// Word-parallel evaluation: each input carries 64 independent test
    /// patterns; returns one word per output.
    ///
    /// # Errors
    ///
    /// Returns [`EdaError::BadArity`] on input-count mismatch.
    pub fn eval_word(&self, assignment: &[u64]) -> Result<Vec<u64>, EdaError> {
        if assignment.len() != self.inputs.len() {
            return Err(EdaError::BadArity {
                op: "netlist eval",
                expected: "one word per primary input",
                actual: assignment.len(),
            });
        }
        let mut values = vec![0u64; self.nodes.len()];
        let mut next_input = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            match n {
                Node::Input { .. } => {
                    values[i] = assignment[next_input];
                    next_input += 1;
                }
                Node::Gate { op, inputs } => {
                    let args: Vec<u64> = inputs.iter().map(|x| values[x.0]).collect();
                    values[i] = op.eval_word(&args);
                }
            }
        }
        Ok(self.outputs.iter().map(|o| values[o.node.0]).collect())
    }

    /// Fan-out count per node (number of gate inputs plus primary outputs
    /// each node drives).
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut fanout = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            if let Node::Gate { inputs, .. } = n {
                for &i in inputs {
                    fanout[i.0] += 1;
                }
            }
        }
        for o in &self.outputs {
            fanout[o.node.0] += 1;
        }
        fanout
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(LogicOp::Xor, vec![a, b]).unwrap();
        n.add_output("y", x);
        n
    }

    #[test]
    fn eval_xor() {
        let n = xor_netlist();
        assert_eq!(n.eval(&[false, false]).unwrap(), vec![false]);
        assert_eq!(n.eval(&[true, false]).unwrap(), vec![true]);
        assert_eq!(n.eval(&[true, true]).unwrap(), vec![false]);
    }

    #[test]
    fn word_eval_matches_scalar() {
        let n = xor_netlist();
        // patterns: bit k of word corresponds to test k.
        let a = 0b0011u64;
        let b = 0b0101u64;
        let out = n.eval_word(&[a, b]).unwrap()[0];
        for k in 0..4 {
            let scalar = n.eval(&[a >> k & 1 == 1, b >> k & 1 == 1]).unwrap()[0];
            assert_eq!(out >> k & 1 == 1, scalar, "pattern {k}");
        }
    }

    #[test]
    fn arity_enforced() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        assert!(n.add_gate(LogicOp::Maj, vec![a, a]).is_err());
        assert!(n.add_gate(LogicOp::Not, vec![a, a]).is_err());
        assert!(n.add_gate(LogicOp::And, vec![a]).is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let bogus = NodeId(99);
        assert_eq!(
            n.add_gate(LogicOp::And, vec![a, bogus]),
            Err(EdaError::UnknownNode { index: 99 })
        );
    }

    #[test]
    fn depth_counts_longest_path() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(LogicOp::And, vec![a, b]).unwrap();
        let g2 = n.add_gate(LogicOp::Or, vec![g1, b]).unwrap();
        let g3 = n.add_gate(LogicOp::Xor, vec![g2, a]).unwrap();
        n.add_output("y", g3);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn mux_semantics() {
        let mut n = Netlist::new("mux");
        let s = n.add_input("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m = n.add_gate(LogicOp::Mux, vec![s, a, b]).unwrap();
        n.add_output("y", m);
        assert_eq!(n.eval(&[true, true, false]).unwrap(), vec![true]);
        assert_eq!(n.eval(&[false, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn fanout_counts() {
        let mut n = Netlist::new("f");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(LogicOp::And, vec![a, b]).unwrap();
        let g2 = n.add_gate(LogicOp::Or, vec![g1, a]).unwrap();
        n.add_output("y1", g1);
        n.add_output("y2", g2);
        let f = n.fanout_counts();
        assert_eq!(f[a.index()], 2);
        assert_eq!(f[g1.index()], 2); // drives g2 and output y1
    }

    #[test]
    fn histogram_and_display() {
        let n = xor_netlist();
        assert_eq!(n.op_histogram()["XOR"], 1);
        let s = n.to_string();
        assert!(s.contains("2 inputs"));
    }

    #[test]
    fn const_nodes_have_depth_zero() {
        let mut n = Netlist::new("c");
        let c = n.add_const(true);
        n.add_output("y", c);
        assert_eq!(n.depth(), 0);
        assert_eq!(n.eval(&[]).unwrap(), vec![true]);
    }
}
