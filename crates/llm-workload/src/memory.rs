//! Per-unit memory-footprint accounting for training and inference.
//!
//! The paper's capacity arguments (Fig. 8b's 5 TB GPU ceiling, the 2 TB
//! cryo-DRAM blade) need the standard footprint decomposition: weights,
//! gradients, optimizer state and activations for training; weights and
//! KV cache for inference. Activation sizing follows the Megatron
//! accounting (≈ `s·b·h·(34 + 5·a·s/h)` bytes per layer at 16-bit
//! precision), with optional full activation recomputation, which trades
//! one extra forward pass for storing only layer inputs.

use crate::kvcache::{KvCache, KvConvention};
use crate::model::{Precision, TransformerConfig};
use crate::parallelism::Parallelism;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory footprint of one processing unit, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Model weights resident on the unit.
    pub weights: f64,
    /// Gradients (training only).
    pub gradients: f64,
    /// Optimizer state (training only; mixed-precision Adam ≈ 12 B/param).
    pub optimizer: f64,
    /// Peak activation storage.
    pub activations: f64,
    /// KV cache (inference only).
    pub kv_cache: f64,
}

impl MemoryFootprint {
    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations + self.kv_cache
    }

    /// Whether the footprint fits a memory of `capacity_bytes`.
    #[must_use]
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        self.total() <= capacity_bytes as f64
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} GB (w {:.2} + g {:.2} + opt {:.2} + act {:.2} + kv {:.2})",
            self.total() / 1e9,
            self.weights / 1e9,
            self.gradients / 1e9,
            self.optimizer / 1e9,
            self.activations / 1e9,
            self.kv_cache / 1e9
        )
    }
}

/// Activation-storage policy during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationPolicy {
    /// Store every intermediate activation for the backward pass.
    StoreAll,
    /// Full recomputation: store only layer inputs, re-run the forward
    /// pass inside backward (≈ +33 % forward FLOPs, ~10× less activation
    /// memory).
    Recompute,
}

/// Per-unit training footprint for `microbatches_in_flight` concurrent
/// microbatches (≈ the PP degree under 1F1B).
#[must_use]
pub fn training_footprint(
    model: &TransformerConfig,
    par: &Parallelism,
    seq_len: u32,
    precision: Precision,
    policy: ActivationPolicy,
) -> MemoryFootprint {
    let shards = f64::from(par.tp() * par.pp());
    let params_per_unit = model.total_params() / shards;
    let b = precision.bytes();
    let weights = params_per_unit * b;
    let gradients = params_per_unit * b;
    let optimizer = params_per_unit * 12.0;

    let s = f64::from(seq_len);
    let h = f64::from(model.hidden);
    let a = f64::from(model.heads);
    let layers_per_stage = f64::from(par.layers_per_stage(model));
    let in_flight = f64::from(par.pp());
    // Megatron per-layer activation bytes for one sequence at 16-bit,
    // sharded by TP; recompute keeps only the 2·s·h layer input.
    let per_layer = match policy {
        ActivationPolicy::StoreAll => s * h * (34.0 + 5.0 * a * s / h) / f64::from(par.tp()),
        ActivationPolicy::Recompute => 2.0 * s * h,
    };
    let activations = per_layer * layers_per_stage * in_flight;

    MemoryFootprint {
        weights,
        gradients,
        optimizer,
        activations,
        kv_cache: 0.0,
    }
}

/// Per-unit inference footprint at the given request shape.
///
/// The KV cache is sized with [`KvConvention::Gqa`]: this function models
/// what is physically resident on a unit, and a grouped-query deployment
/// stores only `kv_heads` head-pairs (identical to MHA sizing when
/// `kv_heads == heads`). Use [`crate::kvcache::paper_kv_bytes`] for the
/// paper's quoted MHA-convention numbers.
#[must_use]
pub fn inference_footprint(
    model: &TransformerConfig,
    par: &Parallelism,
    batch: u32,
    seq_len: u32,
    precision: Precision,
) -> MemoryFootprint {
    let shards = f64::from(par.tp() * par.pp());
    let weights = model.total_params() / shards * precision.bytes();
    let kv = KvCache {
        batch,
        seq_len,
        precision,
    }
    .bytes(model, KvConvention::Gqa)
        / shards;
    // Transient decode activations are negligible next to weights/KV.
    let activations = f64::from(batch) * f64::from(model.hidden) * precision.bytes() * 8.0;
    MemoryFootprint {
        weights,
        gradients: 0.0,
        optimizer: 0.0,
        activations,
        kv_cache: kv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelZoo;

    #[test]
    fn gpt3_175b_needs_recompute_on_h100() {
        let model = ModelZoo::gpt3_175b();
        let par = Parallelism::new(8, 8, 1).unwrap();
        // 80 GB HBM minus ~10 % workspace/fragmentation reserve.
        let usable: u64 = 72 << 30;
        let store = training_footprint(
            &model,
            &par,
            2048,
            Precision::Bf16,
            ActivationPolicy::StoreAll,
        );
        let recompute = training_footprint(
            &model,
            &par,
            2048,
            Precision::Bf16,
            ActivationPolicy::Recompute,
        );
        assert!(
            !store.fits(usable),
            "store-all should blow the usable budget: {store}"
        );
        assert!(recompute.fits(usable), "recompute should fit: {recompute}");
    }

    #[test]
    fn recompute_slashes_activation_memory() {
        let model = ModelZoo::gpt3_76b();
        let par = Parallelism::training_baseline();
        let store = training_footprint(
            &model,
            &par,
            2048,
            Precision::Bf16,
            ActivationPolicy::StoreAll,
        );
        let rec = training_footprint(
            &model,
            &par,
            2048,
            Precision::Bf16,
            ActivationPolicy::Recompute,
        );
        // The Megatron ratio (34 + 5·a·s/h)/tp : 2 ≈ 7× here.
        assert!(store.activations / rec.activations > 5.0);
        // Weights/optimizer unchanged.
        assert_eq!(store.weights, rec.weights);
        assert_eq!(store.optimizer, rec.optimizer);
    }

    #[test]
    fn inference_llama405_fits_64_gpus_at_b8_not_weights_on_one() {
        let model = ModelZoo::llama_405b();
        let tp64 = Parallelism::pure_tp(64).unwrap();
        let fp = inference_footprint(&model, &tp64, 8, 400, Precision::Bf16);
        assert!(fp.fits(80 << 30), "sharded 64-way fits one H100: {fp}");
        let tp1 = Parallelism::new(1, 1, 1).unwrap();
        let single = inference_footprint(&model, &tp1, 8, 400, Precision::Bf16);
        assert!(!single.fits(80 << 30), "unsharded 405B cannot fit");
    }

    #[test]
    fn footprint_display_and_total() {
        let model = ModelZoo::llama2_7b();
        let par = Parallelism::new(1, 1, 1).unwrap();
        let fp = inference_footprint(&model, &par, 1, 4096, Precision::Bf16);
        let sum = fp.weights + fp.gradients + fp.optimizer + fp.activations + fp.kv_cache;
        assert!((fp.total() - sum).abs() < 1.0);
        assert!(fp.to_string().contains("GB"));
    }

    #[test]
    fn inference_footprint_uses_physical_gqa_sizing() {
        // Llama-405B stores 8 of 128 head-pairs: the resident KV must be
        // 16× below the paper's MHA-convention quote.
        let model = ModelZoo::llama_405b();
        let par = Parallelism::pure_tp(64).unwrap();
        let fp = inference_footprint(&model, &par, 8, 400, Precision::Bf16);
        let mha = KvCache {
            batch: 8,
            seq_len: 400,
            precision: Precision::Bf16,
        }
        .bytes_mha(&model)
            / 64.0;
        assert!((mha / fp.kv_cache - 16.0).abs() < 1e-9);
    }

    #[test]
    fn optimizer_state_dominates_training_weights() {
        let model = ModelZoo::gpt3_18b();
        let par = Parallelism::training_baseline();
        let fp = training_footprint(
            &model,
            &par,
            2048,
            Precision::Bf16,
            ActivationPolicy::Recompute,
        );
        assert!(fp.optimizer > fp.weights * 5.0);
    }
}
