//! Serving-simulator experiments: dynamic-traffic extensions of the
//! paper's §VI batching study, all expressed through the scenario-first
//! serving API (`optimus::serving::Scenario`).
//!
//! Where `extensions::serving_capacity` answers the *static* question
//! (largest batch within a per-token budget), these experiments replay
//! traces — seeded Poisson, bursty flash crowds, and a bundled
//! Azure-LLM-shaped recorded sample — through the continuous-batching
//! engine and report what actually matters for serving heavy traffic:
//! TTFT/TPOT tails, per-SLO-class goodput, routing and disaggregation
//! effects at cluster scale.

use llm_workload::kvcache::{KvCache, KvConvention};
use llm_workload::model::ModelZoo;
use llm_workload::parallelism::Parallelism;
use llm_workload::taskgraph::weights_per_unit_bytes;
use optimus::serving::{
    AdmissionControl, AutoscaleConfig, BurstyTraceConfig, CacheEviction, ClusterReport,
    ControlPlane, CsvTrace, DispatchMode, DiurnalTraceConfig, FcfsPolicy, FrontierPoint, KvLayout,
    MaxWaitGuardPolicy, ProfileReport, RoutingPolicy, Scenario, SharedPrefixTraceConfig, SjfPolicy,
    SloClass, StrictPriorityPolicy, TailMetric, TelemetryConfig, Topology, TraceConfig,
    WeightedFairPolicy, WindowRow,
};
use optimus::{
    Comparison, InferenceEstimator, MultiBladeSystem, OptimusError, ServingReport, SpeedupStudy,
};

/// The shared workload: Llama-405B, TP=64, prompt/output spread around
/// the paper's I/O 200/200 point.
fn base_trace() -> TraceConfig {
    TraceConfig {
        seed: 2025,
        requests: 48,
        arrival_rate_per_s: 8.0,
        prompt_tokens: (150, 250),
        output_tokens: (150, 250),
    }
}

/// Sweeps offered load on the SCD blade (16 TB/s per SPU) into an
/// SLO-vs-throughput frontier.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn scd_serving_frontier() -> Result<Vec<FrontierPoint>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
        .model(&model)
        .parallelism(&par)
        .max_batch(64)
        .poisson(base_trace())
        .compile()?
        .frontier(&[2.0, 8.0, 32.0, 128.0])
}

/// Renders the frontier sweep.
#[must_use]
pub fn render_serving_frontier(points: &[FrontierPoint]) -> String {
    let mut out = String::from(
        "Continuous-batching frontier: Llama-405B on the SCD blade (TP=64, 16 TB/s)\n\
         seeded Poisson trace, 48 requests, I/O ~200/200, KV capacity = cryo-DRAM − weights\n\n\
         rate(req/s)  tok/s  goodput  TTFT p95(ms)  TPOT p95(ms)  mean B  evict\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<13}{:>5.0}{:>9.0}{:>14.0}{:>14.2}{:>8.1}{:>7}\n",
            p.arrival_rate_per_s,
            p.report.throughput_tok_s,
            p.report.goodput_tok_s,
            p.report.ttft.p95 * 1e3,
            p.report.tpot.p95 * 1e3,
            p.report.mean_batch,
            p.report.evictions
        ));
    }
    out
}

/// Replays the same trace on the SCD blade and the 64×H100 baseline,
/// each against its own KV capacity.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn scd_vs_gpu_serving() -> Result<Comparison<ServingReport>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    SpeedupStudy::paper_baseline().serving(&model, &par, &base_trace(), 64)
}

/// Renders the serving comparison.
#[must_use]
pub fn render_serving_comparison(c: &Comparison<ServingReport>) -> String {
    let row = |name: &str, r: &ServingReport| {
        format!(
            "{:<6}{:>7.0}{:>9.0}{:>13.0}{:>13.0}{:>13.2}{:>13.2}{:>9.2}{:>7}\n",
            name,
            r.throughput_tok_s,
            r.goodput_tok_s,
            r.ttft.p50 * 1e3,
            r.ttft.p95 * 1e3,
            r.tpot.p50 * 1e3,
            r.tpot.p95 * 1e3,
            r.mean_batch,
            r.evictions
        )
    };
    format!(
        "Serving the same trace: SCD blade vs 64×H100 (Llama-405B, TP=64)\n\
         48 requests at 8 req/s, I/O ~200/200; p95-TPOT speed-up {:.1}×\n\n\
         sys    tok/s  goodput  TTFT p50(ms)  TTFT p95(ms)  TPOT p50(ms)  TPOT p95(ms)  mean B  evict\n{}{}",
        c.speedup,
        row("SCD", &c.scd),
        row("GPU", &c.gpu)
    )
}

/// The bursty cluster workload: flash crowds of mixed-length requests
/// that expose routing-policy differences (long flat periods would let
/// every policy look alike).
fn bursty_cluster_trace() -> BurstyTraceConfig {
    BurstyTraceConfig {
        seed: 4242,
        requests: 64,
        base_rate_per_s: 2.0,
        burst_rate_per_s: 120.0,
        burst_s: 1.5,
        gap_s: 6.0,
        prompt_tokens: (100, 300),
        output_tokens: (50, 400),
    }
}

/// One row of the cluster routing study.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// Routing policy under test.
    pub routing: RoutingPolicy,
    /// Dispatch mode under test.
    pub dispatch: DispatchMode,
    /// The cluster replay outcome.
    pub report: ClusterReport,
}

/// Replays the same bursty trace across 4 SCD blades under every routing
/// policy (per-blade dispatch) plus the central-queue reference: the
/// cluster-scale counterpart of the single-blade frontier.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn cluster_routing_study() -> Result<Vec<ClusterRow>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let system = MultiBladeSystem::new(4)?;
    let trace = bursty_cluster_trace();
    let variants = [
        (RoutingPolicy::RoundRobin, DispatchMode::PerBlade),
        (RoutingPolicy::JoinShortestQueue, DispatchMode::PerBlade),
        (RoutingPolicy::LeastLoadedKv, DispatchMode::PerBlade),
        (RoutingPolicy::JoinShortestQueue, DispatchMode::Central),
    ];
    // 8 decode slots per blade: bursts must queue, so routing and
    // dispatch choices actually show up in the TTFT tail. One compiled
    // scenario, one cost table, four replays.
    let reports = Scenario::new(&system)
        .model(&model)
        .parallelism(&par)
        .max_batch(8)
        .trace(&trace)
        .compile()?
        .run_each(&variants)?;
    Ok(variants
        .iter()
        .zip(reports)
        .map(|(&(routing, dispatch), report)| ClusterRow {
            routing,
            dispatch,
            report,
        })
        .collect())
}

/// Renders the routing study.
#[must_use]
pub fn render_cluster_routing(rows: &[ClusterRow]) -> String {
    let mut out = String::from(
        "Cluster serving: one bursty trace across 4 SCD blades (Llama-405B, TP=64 per blade)\n\
         64 requests, 120 req/s flash crowds, 8 slots/blade, I/O 100-300 / 50-400\n\n\
         routing              dispatch   TTFT p99(ms)  TPOT p95(ms)  tok/s  util skew  evict\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<21}{:<11}{:>12.0}{:>14.2}{:>7.0}{:>11.2}{:>7}\n",
            r.routing.to_string(),
            match r.dispatch {
                DispatchMode::PerBlade => "per-blade",
                DispatchMode::Central => "central",
            },
            r.report.report.ttft.p99 * 1e3,
            r.report.report.tpot.p95 * 1e3,
            r.report.report.throughput_tok_s,
            r.report.utilization_skew,
            r.report.report.evictions,
        ));
    }
    out
}

/// One row of the paged-KV study.
#[derive(Debug, Clone)]
pub struct PagedKvRow {
    /// KV layout under test.
    pub layout: KvLayout,
    /// The replay outcome.
    pub report: ServingReport,
}

/// Replays a capacity-starved workload (KV budget ≈ 6 full requests for
/// 12 concurrent slots, via
/// [`Accelerator::with_dram_capacity`](scd_arch::Accelerator)) under
/// contiguous accounting and paged blocks of 16/64/256 tokens: block
/// granularity trades admission parallelism against fragmentation.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn paged_kv_study() -> Result<Vec<PagedKvRow>, OptimusError> {
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1)?;
    let base = SpeedupStudy::paper_baseline().scd_inference();
    // Shrink the per-unit DRAM so the KV budget is ~6 full-length
    // requests while max_batch wants 12.
    let per_token = KvCache {
        batch: 1,
        seq_len: 1,
        precision: base.precision(),
    }
    .bytes(&model, KvConvention::Gqa);
    let weights = weights_per_unit_bytes(&model, &par, base.precision());
    let kv_budget = per_token * f64::from(200 + 200) * 6.0;
    let accel = base
        .accelerator()
        .clone()
        .with_dram_capacity((weights + kv_budget).ceil() as u64);
    let est = InferenceEstimator::new(accel, scd_arch::Blade::baseline().interconnect());
    let trace = TraceConfig {
        seed: 77,
        requests: 32,
        arrival_rate_per_s: 24.0,
        prompt_tokens: (150, 250),
        output_tokens: (150, 250),
    };
    let mut rows = Vec::new();
    for layout in [
        KvLayout::Contiguous,
        KvLayout::Paged { block_tokens: 16 },
        KvLayout::Paged { block_tokens: 64 },
        KvLayout::Paged { block_tokens: 256 },
    ] {
        let report = Scenario::on_estimator(est.clone())
            .model(&model)
            .parallelism(&par)
            .max_batch(12)
            .kv_layout(layout)
            .poisson(trace)
            .compile()?
            .run()?
            .report;
        rows.push(PagedKvRow { layout, report });
    }
    Ok(rows)
}

/// Renders the paged-KV study.
#[must_use]
pub fn render_paged_kv(rows: &[PagedKvRow]) -> String {
    let mut out = String::from(
        "Paged KV under capacity pressure: Llama2-7B, KV budget ≈ 6 requests, 12 slots\n\
         32 requests at 24 req/s, I/O ~200/200\n\n\
         layout           mean B  evict  wasted tok  frag peak(MB)  TTFT p99(ms)\n",
    );
    for r in rows {
        let name = match r.layout {
            KvLayout::Contiguous => "contiguous".to_owned(),
            KvLayout::Paged { block_tokens } => format!("paged/{block_tokens}"),
        };
        out.push_str(&format!(
            "{:<17}{:>6.2}{:>7}{:>12}{:>15.1}{:>14.0}\n",
            name,
            r.report.mean_batch,
            r.report.evictions,
            r.report.wasted_tokens,
            r.report.kv_fragmentation_peak_bytes / 1e6,
            r.report.ttft.p99 * 1e3,
        ));
    }
    out
}

/// One row of the disaggregation study.
#[derive(Debug, Clone)]
pub struct DisaggRow {
    /// Human-readable topology label ("4 mixed", "2P + 2D").
    pub label: &'static str,
    /// The replay outcome.
    pub report: ClusterReport,
}

/// The prefill-heavy flash-crowd workload disaggregation exists for:
/// long prompts, short outputs, bursts that force prompt passes to
/// collide with running decodes on mixed blades.
fn prefill_heavy_trace() -> BurstyTraceConfig {
    BurstyTraceConfig {
        seed: 808,
        requests: 48,
        base_rate_per_s: 2.0,
        burst_rate_per_s: 80.0,
        burst_s: 1.0,
        gap_s: 5.0,
        prompt_tokens: (512, 1024),
        output_tokens: (16, 48),
    }
}

/// Replays the same prefill-heavy bursty trace on 4 SCD blades as a
/// 2-prefill + 2-decode DistServe-style split versus 4 interchangeable
/// mixed blades: dedicating prefill blades keeps long prompt passes out
/// of the decode iterations, cutting the worst decode stall and the
/// inter-token tail at the cost of the fabric handoff.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn disaggregation_study() -> Result<Vec<DisaggRow>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let system = MultiBladeSystem::new(4)?;
    let trace = prefill_heavy_trace();
    let variants: [(&'static str, Topology); 2] = [
        ("4 mixed", Topology::mixed(4)),
        ("2P + 2D", Topology::disaggregated(2, 2)),
    ];
    variants
        .into_iter()
        .map(|(label, topology)| {
            let report = Scenario::new(&system)
                .model(&model)
                .parallelism(&par)
                .max_batch(6)
                .trace(&trace)
                .topology(topology)
                .compile()?
                .run()?;
            Ok(DisaggRow { label, report })
        })
        .collect()
}

/// Renders the disaggregation study.
#[must_use]
pub fn render_disaggregation(rows: &[DisaggRow]) -> String {
    let mut out = String::from(
        "Disaggregated prefill/decode: 2P+2D split vs 4 mixed blades (Llama-405B, TP=64)\n\
         prefill-heavy flash crowds: 48 requests, prompts 512-1024, outputs 16-48\n\n\
         topology   TTFT p50(ms)  TTFT p99(ms)  TPOT p99(ms)  max step(ms)  tok/s\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11}{:>12.0}{:>14.0}{:>14.2}{:>14.0}{:>7.0}\n",
            r.label,
            r.report.report.ttft.p50 * 1e3,
            r.report.report.ttft.p99 * 1e3,
            r.report.report.tpot.p99 * 1e3,
            r.report.report.max_step_s * 1e3,
            r.report.report.throughput_tok_s,
        ));
    }
    out
}

/// Path of the bundled Azure-LLM-shaped recorded trace sample.
#[must_use]
pub fn recorded_trace_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/data/azure_llm_sample.csv")
}

/// Replays the bundled recorded trace (Azure-LLM-shaped prompt/output
/// distributions) as a blade-count capacity sweep (1/2/4 SCD blades,
/// JSQ routing) — the cluster studies on recorded arrivals the ROADMAP
/// asked for — with interactive/batch SLO classes assigned by output
/// length.
///
/// # Errors
///
/// Propagates IO ([`OptimusError::Io`]) and simulation failures.
pub fn recorded_trace_study() -> Result<Vec<RecordedRow>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let trace = CsvTrace::from_path(recorded_trace_path())?;
    [1u32, 2, 4]
        .into_iter()
        .map(|blades| {
            let system = MultiBladeSystem::new(blades)?;
            let report = Scenario::new(&system)
                .model(&model)
                .parallelism(&par)
                .max_batch(8)
                .trace(&trace)
                .routing(RoutingPolicy::JoinShortestQueue)
                .slo_classes(vec![
                    SloClass::new("interactive", 4.0, 0.05),
                    SloClass::batch(),
                ])
                .classify(|r| u32::from(r.output_tokens > 200))
                .compile()?
                .run()?;
            Ok(RecordedRow { blades, report })
        })
        .collect()
}

/// One row of the recorded-trace capacity sweep.
#[derive(Debug, Clone)]
pub struct RecordedRow {
    /// Blades serving the recorded trace.
    pub blades: u32,
    /// The replay outcome (with per-class breakdown).
    pub report: ClusterReport,
}

/// Renders the recorded-trace study with its per-class breakdown.
#[must_use]
pub fn render_recorded_trace(rows: &[RecordedRow]) -> String {
    let mut out = String::from(
        "Recorded arrivals: bundled Azure-LLM-shaped sample, blade-count sweep (JSQ)\n\
         (Llama-405B, TP=64 per blade; 64 requests, log-normal prompts ~900, outputs ~180)\n\n\
         blades  TTFT p50(ms)  TTFT p99(ms)  tok/s  mean B  inter-goodput  batch-goodput\n",
    );
    for r in rows {
        let class = |name: &str| r.report.report.class(name).map_or(0.0, |c| c.goodput_tok_s);
        out.push_str(&format!(
            "{:<8}{:>12.0}{:>14.0}{:>7.0}{:>8.2}{:>15.0}{:>15.0}\n",
            r.blades,
            r.report.report.ttft.p50 * 1e3,
            r.report.report.ttft.p99 * 1e3,
            r.report.report.throughput_tok_s,
            r.report.report.mean_batch,
            class("interactive"),
            class("batch"),
        ));
    }
    out
}

/// One row of the prefix-caching study.
#[derive(Debug, Clone)]
pub struct PrefixCacheRow {
    /// Topology label ("1 blade", "1P + 3D").
    pub topology: &'static str,
    /// Fraction of requests sharing a system prompt.
    pub share: f64,
    /// Whether prefix caching was enabled.
    pub caching: bool,
    /// The replay outcome.
    pub report: ClusterReport,
}

/// The system-prompt-heavy workload prefix caching exists for: a few
/// long (unaligned, so copy-on-write fires) system prompts Zipf-shared
/// across most requests, each followed by a short unique user turn.
fn prefix_trace(share: f64) -> SharedPrefixTraceConfig {
    SharedPrefixTraceConfig {
        seed: 1717,
        requests: 48,
        arrival_rate_per_s: 12.0,
        prefixes: 3,
        prefix_tokens: (600, 900),
        zipf_s: 1.0,
        share_fraction: share,
        unique_prompt_tokens: (32, 128),
        output_tokens: (32, 96),
    }
}

/// Replays the same system-prompt-heavy workload with prefix caching off
/// and on, at equal KV capacity, sweeping the fraction of requests that
/// share a prefix (0 / 0.5 / 0.9) on one SCD blade and comparing the
/// disaggregated 1P+3D split at the 0.9 point: cached prefixes skip
/// their prefill (on the prefill tier too), so TTFT tails collapse as
/// sharing rises, while ref-counted shared blocks keep the reported
/// occupancy honest (stored once, not per sequence).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn prefix_caching_study() -> Result<Vec<PrefixCacheRow>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let system = MultiBladeSystem::new(4)?;
    let mut rows = Vec::new();
    for share in [0.0, 0.5, 0.9] {
        for caching in [false, true] {
            let mut s = Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
                .model(&model)
                .parallelism(&par)
                .max_batch(8)
                .trace(&prefix_trace(share));
            if caching {
                s = s.prefix_caching(16);
            }
            rows.push(PrefixCacheRow {
                topology: "1 blade",
                share,
                caching,
                report: s.compile()?.run()?,
            });
        }
    }
    for caching in [false, true] {
        let mut s = Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(8)
            .topology(Topology::disaggregated(1, 3))
            .trace(&prefix_trace(0.9));
        if caching {
            s = s.prefix_caching(16);
        }
        rows.push(PrefixCacheRow {
            topology: "1P + 3D",
            share: 0.9,
            caching,
            report: s.compile()?.run()?,
        });
    }
    Ok(rows)
}

/// Renders the prefix-caching study.
#[must_use]
pub fn render_prefix_caching(rows: &[PrefixCacheRow]) -> String {
    let mut out = String::from(
        "Prefix caching: shared system prompts stored once vs per-request\n\
         (Llama-405B, TP=64; 48 requests, 600-900-token prompts Zipf-shared, equal KV)\n\n\
         topology  share  cache  hit rate  tok saved  shared pk(MB)  TTFT p50(ms)  TTFT p99(ms)  goodput\n",
    );
    for r in rows {
        let rep = &r.report.report;
        out.push_str(&format!(
            "{:<10}{:<7.1}{:<7}{:>8.2}{:>11}{:>15.1}{:>14.0}{:>14.0}{:>9.0}\n",
            r.topology,
            r.share,
            if r.caching { "on" } else { "off" },
            rep.prefix_hit_rate(),
            rep.prefix_tokens_saved,
            rep.kv_shared_peak_bytes / 1e6,
            rep.ttft.p50 * 1e3,
            rep.ttft.p99 * 1e3,
            rep.goodput_tok_s,
        ));
    }
    out
}

/// One row of the cluster-cache coordination study.
#[derive(Debug, Clone)]
pub struct ClusterCacheRow {
    /// Routing policy under test.
    pub routing: RoutingPolicy,
    /// Whether the global KV cache tier was enabled.
    pub tier: bool,
    /// Blade-cache eviction order.
    pub eviction: CacheEviction,
    /// The replay outcome.
    pub report: ClusterReport,
}

/// The multi-tenant workload cluster coordination exists for: several
/// Zipf-popular system prompts spread over four blades, with per-blade
/// KV tight enough that a blade holding every prompt's cache thrashes.
fn cluster_cache_trace() -> SharedPrefixTraceConfig {
    SharedPrefixTraceConfig {
        seed: 4242,
        requests: 96,
        arrival_rate_per_s: 300.0,
        prefixes: 8,
        prefix_tokens: (600, 900),
        zipf_s: 1.2,
        share_fraction: 0.9,
        unique_prompt_tokens: (32, 128),
        output_tokens: (8, 32),
    }
}

/// Replays the same Zipf-shared multi-prompt workload over a 4-blade
/// cluster at *equal aggregate KV*, sweeping the coordination stack in:
/// round-robin and join-shortest-queue scatter every prompt over every
/// blade (each blade caches — and thrashes — all of them), cache-aware
/// routing concentrates each prompt's requests on the blade already
/// holding its blocks, the global KV tier streams the head prompt's
/// blocks to blades that are still cold, and LFU eviction keeps the
/// Zipf head resident where LRU recency drops it during tail bursts.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn cluster_cache_study() -> Result<Vec<ClusterCacheRow>, OptimusError> {
    let model = ModelZoo::llama2_7b();
    let par = Parallelism::new(1, 1, 1)?;
    let system = MultiBladeSystem::new(4)?;
    let trace = cluster_cache_trace();
    // Per-blade KV sized to hold roughly two of the eight prompts'
    // blocks plus the running batch — identical across every variant,
    // so the sweep compares coordination, not capacity.
    let per_token = KvCache {
        batch: 1,
        seq_len: 1,
        precision: system.inference_estimator().precision(),
    }
    .bytes(&model, KvConvention::Gqa);
    let capacity = 2048.0 * per_token;
    let variants = [
        (RoutingPolicy::RoundRobin, false, CacheEviction::Lru),
        (RoutingPolicy::JoinShortestQueue, false, CacheEviction::Lru),
        (RoutingPolicy::CacheAware, false, CacheEviction::Lru),
        (RoutingPolicy::CacheAware, true, CacheEviction::Lru),
        (RoutingPolicy::CacheAware, true, CacheEviction::Lfu),
    ];
    variants
        .into_iter()
        .map(|(routing, tier, eviction)| {
            let mut s = Scenario::new(&system)
                .model(&model)
                .parallelism(&par)
                .max_batch(8)
                .kv_capacity_bytes(capacity)
                .routing(routing)
                .prefix_caching(16)
                .cache_eviction(eviction)
                .trace(&trace);
            if tier {
                // The tier holds what one warm blade holds: enough for
                // every prompt's chain, far less than 4x the blade KV.
                s = s.global_kv_cache(8192);
            }
            Ok(ClusterCacheRow {
                routing,
                tier,
                eviction,
                report: s.compile()?.run()?,
            })
        })
        .collect()
}

/// Renders the cluster-cache coordination study.
#[must_use]
pub fn render_cluster_cache(rows: &[ClusterCacheRow]) -> String {
    let mut out = String::from(
        "Cluster cache coordination: routing x global tier x eviction at equal aggregate KV\n\
         (Llama-2-7B, 4 blades; 96 requests over 8 Zipf-shared prompts, 90% tagged)\n\n\
         routing              tier  evict  hit rate  tok saved  streams  fabric(MB)  skew(MB)  TTFT p50(ms)  TTFT p99(ms)  goodput\n",
    );
    for r in rows {
        let rep = &r.report.report;
        out.push_str(&format!(
            "{:<21}{:<6}{:<7}{:>8.2}{:>11}{:>9}{:>12.1}{:>10.1}{:>14.0}{:>14.0}{:>9.0}\n",
            r.routing.to_string(),
            if r.tier { "on" } else { "off" },
            match r.eviction {
                CacheEviction::Lru => "lru",
                CacheEviction::Lfu => "lfu",
            },
            rep.prefix_hit_rate(),
            rep.prefix_tokens_saved,
            rep.remote_prefix_streams,
            rep.remote_kv_streamed_bytes / 1e6,
            r.report.cache_residency_skew / 1e6,
            rep.ttft.p50 * 1e3,
            rep.ttft.p99 * 1e3,
            rep.goodput_tok_s,
        ));
    }
    out
}

/// One row of the SLO-class policy study.
#[derive(Debug, Clone)]
pub struct SloPolicyRow {
    /// Scheduling policy under test.
    pub policy: &'static str,
    /// The replay outcome (with per-class breakdown).
    pub report: ServingReport,
}

/// An overloaded single blade serving a mixed population — interactive
/// requests (short outputs, a tight 2 s TTFT / 20 ms TPOT target,
/// double weight) against batch requests (long outputs, loose targets) —
/// under FCFS, SJF and SJF + max-wait-guard: the ROADMAP's SLO-class
/// goodput comparison. The whole population arrives as one flash burst,
/// so FCFS leaves interactive requests queued behind long batch jobs
/// past their TTFT target while SJF runs the short jobs first, buying
/// interactive goodput at the batch class's expense.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn slo_class_study() -> Result<Vec<SloPolicyRow>, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    let trace = TraceConfig {
        seed: 99,
        requests: 48,
        arrival_rate_per_s: f64::INFINITY,
        prompt_tokens: (64, 256),
        output_tokens: (8, 256),
    };
    let classes = || {
        vec![
            SloClass::new("interactive", 2.0, 0.02).with_weight(2.0),
            SloClass::new("batch", 60.0, 0.5),
        ]
    };
    let scenario = || {
        Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .poisson(trace)
            .slo_classes(classes())
            .classify(|r| u32::from(r.output_tokens > 64))
    };
    let mut rows = Vec::new();
    for (name, scenario) in [
        ("fcfs", scenario().policy(FcfsPolicy)),
        ("sjf", scenario().policy(SjfPolicy)),
        (
            "sjf+guard(2s)",
            scenario().policy(MaxWaitGuardPolicy::new(2.0)),
        ),
    ] {
        rows.push(SloPolicyRow {
            policy: name,
            report: scenario.compile()?.run()?.report,
        });
    }
    Ok(rows)
}

/// Renders the SLO-class policy study.
#[must_use]
pub fn render_slo_classes(rows: &[SloPolicyRow]) -> String {
    let mut out = String::from(
        "SLO-class goodput under admission policies: one flash-crowded SCD blade\n\
         (Llama-405B, TP=64; interactive = tight 2 s/20 ms targets, 2× weight)\n\n\
         policy         inter-attain  inter-goodput  batch-attain  batch-goodput  weighted\n",
    );
    for r in rows {
        let c = |name: &str| r.report.class(name).expect("class present");
        out.push_str(&format!(
            "{:<15}{:>12.2}{:>15.0}{:>14.2}{:>15.0}{:>10.0}\n",
            r.policy,
            c("interactive").slo_attainment,
            c("interactive").goodput_tok_s,
            c("batch").slo_attainment,
            c("batch").goodput_tok_s,
            r.report.weighted_goodput_tok_s(),
        ));
    }
    out
}

/// One overload row of the control-plane study.
#[derive(Debug, Clone)]
pub struct ControlRow {
    /// Configuration under test.
    pub label: &'static str,
    /// The cluster replay outcome.
    pub report: ClusterReport,
}

/// The closed-loop control-plane study: class-aware ordering and load
/// shedding under overload, plus the queue-depth autoscaler on a
/// diurnal trace.
#[derive(Debug, Clone)]
pub struct ControlPlaneStudy {
    /// Flash-crowd rows: fcfs / strict-priority / weighted-fair /
    /// fcfs + shedding gate.
    pub overload: Vec<ControlRow>,
    /// The attainment floor the shedding gate defends.
    pub floor: f64,
    /// Diurnal trace on 4 always-on blades (the reference).
    pub fixed: ClusterReport,
    /// The same trace with the 1..=4-blade queue-depth autoscaler.
    pub autoscaled: ClusterReport,
}

/// Requests in the diurnal autoscaling phase.
pub const CONTROL_DIURNAL_REQUESTS: u32 = 480;

/// Closes the serving control loop. Phase one drives one blade at a
/// sustained ~2× overload with [`slo_class_study`]'s mixed
/// interactive/batch population, under FCFS, strict-priority,
/// weighted-fair, and FCFS behind the load-shedding admission gate:
/// class-aware ordering must buy weighted goodput, and the gate must
/// hold interactive attainment at its floor by shedding batch work.
/// Phase two replays a day/night diurnal trace against a fixed 4-blade
/// pool and against the queue-depth autoscaler, which must track the
/// peaks without flapping.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn control_plane_study() -> Result<ControlPlaneStudy, OptimusError> {
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;
    // Phase one: sustained ~2× overload on ONE blade. The 4 decode
    // slots clear roughly 20 req/s of this population, so 40 req/s
    // builds an ever-deeper backlog: admission order decides who meets
    // the 0.5 s TTFT target, and — unlike a one-shot flash crowd,
    // whose misses only finish after the queue has already drained —
    // the backlog keeps feeding the shedding gate's attainment window
    // while there is still work left to protect.
    let trace = TraceConfig {
        seed: 99,
        requests: 192,
        arrival_rate_per_s: 40.0,
        prompt_tokens: (64, 256),
        output_tokens: (8, 256),
    };
    let classes = || {
        vec![
            SloClass::new("interactive", 0.5, 0.02).with_weight(2.0),
            SloClass::new("batch", 60.0, 0.5),
        ]
    };
    let floor = 0.8;
    let scenario = || {
        Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .poisson(trace)
            .slo_classes(classes())
            .classify(|r| u32::from(r.output_tokens > 64))
    };
    let gate = ControlPlane::new().shed(
        AdmissionControl::new(0, floor)
            .with_window(8, 2)
            .with_resume_margin(0.1),
    );
    let mut overload = Vec::new();
    for (label, scenario) in [
        ("fcfs", scenario().policy(FcfsPolicy)),
        (
            "strict-priority",
            scenario().policy(StrictPriorityPolicy::new()),
        ),
        (
            "weighted-fair",
            scenario().policy(WeightedFairPolicy::new()),
        ),
        ("fcfs+shed", scenario().policy(FcfsPolicy).control(gate)),
    ] {
        overload.push(ControlRow {
            label,
            report: scenario.compile()?.run()?,
        });
    }

    // Phase two: day/night arrivals on the 4-blade central queue.
    // Daytime peaks (~2× the mean) swamp a single blade, overnight
    // troughs leave the pool idle — the autoscaler's habitat.
    let system = MultiBladeSystem::new(4)?;
    let diurnal = DiurnalTraceConfig {
        seed: 7,
        requests: CONTROL_DIURNAL_REQUESTS,
        mean_rate_per_s: 8.0,
        amplitude: 0.9,
        period_s: 30.0,
        prompt_tokens: (64, 256),
        output_tokens: (128, 384),
    };
    let base = || {
        Scenario::new(&system)
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .dispatch(DispatchMode::Central)
            .trace(&diurnal)
    };
    let fixed = base().compile()?.run()?;
    let autoscaled = base()
        .control(
            ControlPlane::new().autoscale(
                AutoscaleConfig::new(1, 4)
                    .with_watermarks(1, 6)
                    .with_warmup(0.5)
                    .with_cooldown(2.0),
            ),
        )
        .compile()?
        .run()?;
    Ok(ControlPlaneStudy {
        overload,
        floor,
        fixed,
        autoscaled,
    })
}

/// Renders the control-plane study.
#[must_use]
pub fn render_control_plane(study: &ControlPlaneStudy) -> String {
    let mut out = format!(
        "Control plane: class-aware ordering + shedding at 2x sustained overload\n\
         (one SCD blade, 4 slots; interactive 0.5 s/20 ms targets, 2x weight;\n\
         shedding gate defends interactive attainment >= {:.2})\n\n\
         config           inter-attain  inter-goodput  shed  weighted\n",
        study.floor
    );
    for r in &study.overload {
        let inter = r.report.report.class("interactive").expect("class present");
        out.push_str(&format!(
            "{:<17}{:>12.2}{:>15.0}{:>6}{:>10.0}\n",
            r.label,
            inter.slo_attainment,
            inter.goodput_tok_s,
            r.report.report.shed_requests,
            r.report.report.weighted_goodput_tok_s(),
        ));
    }
    let line = |label: &str, rep: &ClusterReport| {
        format!(
            "{:<11}{:>7}{:>13}{:>13.0}{:>15.0}\n",
            label,
            rep.peak_blades,
            rep.scale_events,
            rep.report.ttft.p99 * 1e3,
            rep.report.throughput_tok_s,
        )
    };
    out.push_str(&format!(
        "\nAutoscaler on the diurnal trace ({} requests, 8 req/s mean, 0.9 swing):\n\n\
         pool       blades  scale-events  TTFT p99(ms)  tok/s\n{}{}",
        CONTROL_DIURNAL_REQUESTS,
        line("fixed-4", &study.fixed),
        line("auto-1..4", &study.autoscaled),
    ));
    out
}

/// The telemetry study outcome: the windowed series pinned against the
/// exact event timeline on both control-plane phases, plus the run-long
/// sketch/exact tail comparison and the simulator self-profile.
#[derive(Debug, Clone)]
pub struct TelemetryStudy {
    /// Overload replay (FCFS + shedding gate) with telemetry mounted.
    pub overload: ClusterReport,
    /// Exact instant of the first shed (the gate opening).
    pub shed_open_s: f64,
    /// Exact instant of the last shed (the gate's final close).
    pub shed_close_s: f64,
    /// `[start, end)` of the telemetry window resolving the gate open.
    pub shed_open_window: (f64, f64),
    /// `[start, end)` of the telemetry window resolving the gate close.
    pub shed_close_window: (f64, f64),
    /// Diurnal autoscaled replay with telemetry + profiling mounted.
    pub autoscaled: ClusterReport,
    /// Start of the first window whose queue depth crossed the scale-up
    /// watermark.
    pub depth_cross_s: f64,
    /// Exact instant of the first scale-up.
    pub scale_up_s: f64,
    /// Autoscaler reaction lag the series resolves:
    /// `scale_up_s - depth_cross_s`.
    pub scale_lag_s: f64,
    /// Run-long P² sketch estimate of the p99 request latency (s).
    pub sketch_p99_s: f64,
    /// Exact nearest-rank p99 request latency from the report (s).
    pub exact_p99_s: f64,
    /// Self-profile of the autoscaled replay (all-zero when the
    /// `self-profile` feature is compiled out).
    pub profile: ProfileReport,
    /// Windowed series of the autoscaled phase.
    pub windows: Vec<WindowRow>,
    /// The wide-row CSV export of the autoscaled phase.
    pub csv: String,
    /// The Prometheus text-format export of the autoscaled phase.
    pub prometheus: String,
}

/// The window of `rows` containing instant `t` (falling back to the
/// last window for the replay's final event, whose window is closed by
/// the end-of-run flush).
fn window_at(rows: &[WindowRow], t: f64) -> &WindowRow {
    rows.iter()
        .find(|w| w.start_s <= t && t < w.end_s)
        .or_else(|| rows.last())
        .expect("telemetry recorded windows")
}

/// Mounts the telemetry collector on both control-plane phases and
/// checks the series against the exact event timeline. Phase one
/// replays [`control_plane_study`]'s FCFS + shedding-gate overload with
/// a [`crate::timeline::TimelineObserver`] co-mounted: the windows
/// containing the exact first and last shed instants must themselves
/// record sheds, and the windowed shed counts must conserve the
/// report's total. Phase two replays the diurnal autoscaled pool: the
/// queue-depth series must cross the scale-up watermark at or before
/// the first scale-up, the window holding that scale-up must record it,
/// and the run-long P² latency sketch must land within 10 % of the
/// report's exact nearest-rank p99.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics when the telemetry series fails to resolve the gate or the
/// autoscaler — the study's acceptance checks.
pub fn telemetry_study() -> Result<TelemetryStudy, OptimusError> {
    use crate::timeline::{TimelineEventKind, TimelineObserver};
    let model = ModelZoo::llama_405b();
    let par = Parallelism::pure_tp(64)?;

    // Phase one: the control-plane study's sustained ~2x overload under
    // FCFS + the shedding gate, with quarter-second telemetry windows.
    let trace = TraceConfig {
        seed: 99,
        requests: 192,
        arrival_rate_per_s: 40.0,
        prompt_tokens: (64, 256),
        output_tokens: (8, 256),
    };
    let gate = ControlPlane::new().shed(
        AdmissionControl::new(0, 0.8)
            .with_window(8, 2)
            .with_resume_margin(0.1),
    );
    let mut shed_timeline = TimelineObserver::default();
    let (overload, shed_tel) =
        Scenario::on_estimator(SpeedupStudy::paper_baseline().scd_inference())
            .model(&model)
            .parallelism(&par)
            .max_batch(4)
            .poisson(trace)
            .slo_classes(vec![
                SloClass::new("interactive", 0.5, 0.02).with_weight(2.0),
                SloClass::new("batch", 60.0, 0.5),
            ])
            .classify(|r| u32::from(r.output_tokens > 64))
            .policy(FcfsPolicy)
            .control(gate)
            .telemetry(TelemetryConfig {
                window_s: 0.25,
                max_windows: 512,
                profile: false,
            })
            .compile()?
            .run_observed_with_telemetry(&mut shed_timeline)?;
    let sheds: Vec<f64> = shed_timeline
        .events
        .iter()
        .filter(|e| e.kind == TimelineEventKind::Shed)
        .map(|e| e.clock_s)
        .collect();
    assert!(!sheds.is_empty(), "the overload phase must shed");
    let (shed_open_s, shed_close_s) = (sheds[0], *sheds.last().expect("non-empty"));
    let shed_rows = shed_tel.cluster_windows();
    let open_w = window_at(&shed_rows, shed_open_s);
    let close_w = window_at(&shed_rows, shed_close_s);
    assert!(
        open_w.sheds > 0 && close_w.sheds > 0,
        "the series must resolve the gate's open and close instants"
    );
    assert_eq!(
        shed_rows.iter().map(|w| w.sheds).sum::<u64>(),
        overload.report.shed_requests,
        "windowed sheds must conserve the report total"
    );
    let shed_open_window = (open_w.start_s, open_w.end_s);
    let shed_close_window = (close_w.start_s, close_w.end_s);

    // Phase two: the diurnal autoscaled pool, profiled, at half-second
    // resolution (finer than the 0.5 s warm-up it must resolve).
    let high_watermark = 6;
    let system = MultiBladeSystem::new(4)?;
    let diurnal = DiurnalTraceConfig {
        seed: 7,
        requests: CONTROL_DIURNAL_REQUESTS,
        mean_rate_per_s: 8.0,
        amplitude: 0.9,
        period_s: 30.0,
        prompt_tokens: (64, 256),
        output_tokens: (128, 384),
    };
    let mut scale_timeline = TimelineObserver::default();
    let (autoscaled, tel) = Scenario::new(&system)
        .model(&model)
        .parallelism(&par)
        .max_batch(4)
        .dispatch(DispatchMode::Central)
        .trace(&diurnal)
        .control(
            ControlPlane::new().autoscale(
                AutoscaleConfig::new(1, 4)
                    .with_watermarks(1, high_watermark)
                    .with_warmup(0.5)
                    .with_cooldown(2.0),
            ),
        )
        .telemetry(TelemetryConfig {
            window_s: 0.5,
            max_windows: 512,
            profile: true,
        })
        .compile()?
        .run_observed_with_telemetry(&mut scale_timeline)?;
    assert!(autoscaled.scale_events > 0, "the diurnal peak must scale");
    let scale_up_s = scale_timeline
        .events
        .iter()
        .find(|e| e.kind == TimelineEventKind::Scale && e.detail > f64::from(e.blade))
        .map(|e| e.clock_s)
        .expect("the first scale event is a scale-up");
    let windows = tel.cluster_windows();
    // The depth series must see the backlog cross the watermark at or
    // before the scale-up it triggers — the lag the series resolves.
    let depth_cross_s = windows
        .iter()
        .find(|w| w.queue_depth >= high_watermark && w.start_s <= scale_up_s)
        .map(|w| w.start_s)
        .expect("the depth series must cross the watermark before scale-up");
    let scale_lag_s = scale_up_s - depth_cross_s;
    assert!(scale_lag_s >= 0.0);
    assert!(
        window_at(&windows, scale_up_s).scale_events > 0,
        "the series must resolve the scale-up window"
    );
    assert!(
        windows.iter().map(|w| w.active_blades).max() > Some(1),
        "the active-blade gauge must follow the scale-up"
    );
    let sketch_p99_s = tel
        .tail(TailMetric::Latency)
        .p99
        .expect("completions were sketched");
    let exact_p99_s = autoscaled.report.latency.p99;
    assert!(
        (sketch_p99_s - exact_p99_s).abs() <= 0.1 * exact_p99_s,
        "P2 p99 {sketch_p99_s} vs exact {exact_p99_s}: off by more than 10%"
    );
    let profile = *tel.profile().expect("profiling was requested");
    Ok(TelemetryStudy {
        overload,
        shed_open_s,
        shed_close_s,
        shed_open_window,
        shed_close_window,
        autoscaled,
        depth_cross_s,
        scale_up_s,
        scale_lag_s,
        sketch_p99_s,
        exact_p99_s,
        profile,
        csv: tel.to_csv(),
        prometheus: tel.to_prometheus(),
        windows,
    })
}

/// Renders the telemetry study.
#[must_use]
pub fn render_telemetry(study: &TelemetryStudy) -> String {
    let mut out = format!(
        "Telemetry: windowed series vs exact event timeline\n\n\
         Shedding gate (overload phase, 0.25 s windows): {} shed\n\
         gate opens  {:.3} s -> window [{:.2}, {:.2}) s\n\
         gate closes {:.3} s -> window [{:.2}, {:.2}) s\n\n\
         Autoscaler (diurnal phase, 0.5 s windows): {} scale events\n\
         depth crosses watermark at {:.2} s, first scale-up at {:.3} s \
         (lag {:.2} s)\n\n\
         Run-long P2 sketch vs exact nearest-rank (request latency):\n\
         p99 sketch {:.3} s vs exact {:.3} s ({:+.1}%)\n",
        study.overload.report.shed_requests,
        study.shed_open_s,
        study.shed_open_window.0,
        study.shed_open_window.1,
        study.shed_close_s,
        study.shed_close_window.0,
        study.shed_close_window.1,
        study.autoscaled.scale_events,
        study.depth_cross_s,
        study.scale_up_s,
        study.scale_lag_s,
        study.sketch_p99_s,
        study.exact_p99_s,
        (study.sketch_p99_s / study.exact_p99_s - 1.0) * 100.0,
    );
    let p = &study.profile;
    if p.is_empty() {
        out.push_str("\nSelf-profile: compiled out (self-profile feature off)\n");
    } else {
        out.push_str(&format!(
            "\nSelf-profile of the autoscaled replay:\n\
             phase            calls      wall(ms)\n\
             admission   {:>10}{:>12.1}\n\
             routing     {:>10}{:>12.1}\n\
             stretch-plan{:>10}{:>12.1}\n\
             leapfrog    {:>10}{:>12.1}\n\
             heap-ops    {:>10}\n",
            p.admission_rounds,
            p.admission_s * 1e3,
            p.routing_calls,
            p.routing_s * 1e3,
            p.stretch_plans,
            p.stretch_plan_s * 1e3,
            p.leapfrogs,
            p.leapfrog_s * 1e3,
            p.heap_ops,
        ));
    }
    out.push_str(&format!(
        "\nExports: {} CSV rows ({} windows), {} Prometheus lines\n",
        study.csv.lines().count().saturating_sub(1),
        study.windows.len(),
        study.prometheus.lines().count(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_saturates_gracefully() {
        let pts = scd_serving_frontier().unwrap();
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert_eq!(p.report.completed, 48);
        }
        // Tail TTFT must grow with offered load; throughput must not
        // collapse.
        assert!(pts.last().unwrap().report.ttft.p95 >= pts[0].report.ttft.p95);
        assert!(
            pts.last().unwrap().report.throughput_tok_s >= pts[0].report.throughput_tok_s * 0.9
        );
        assert!(render_serving_frontier(&pts).contains("TPOT p95"));
    }

    #[test]
    fn serving_comparison_reports_scd_advantage() {
        let c = scd_vs_gpu_serving().unwrap();
        assert!(c.speedup > 2.0, "got {:.2}", c.speedup);
        assert!(c.scd.tpot.p95 < c.gpu.tpot.p95);
        assert!(render_serving_comparison(&c).contains("speed-up"));
    }

    #[test]
    fn join_shortest_queue_beats_round_robin_on_bursty_p99_ttft() {
        // The PR 3 cluster acceptance criterion: under flash-crowd
        // arrivals with heavily mixed lengths, load-aware routing must
        // beat blind round-robin on tail TTFT and spread load more
        // evenly.
        let rows = cluster_routing_study().unwrap();
        let find = |routing, dispatch| {
            rows.iter()
                .find(|r| r.routing == routing && r.dispatch == dispatch)
                .expect("row present")
        };
        let rr = find(RoutingPolicy::RoundRobin, DispatchMode::PerBlade);
        let jsq = find(RoutingPolicy::JoinShortestQueue, DispatchMode::PerBlade);
        assert_eq!(rr.report.report.completed, 64);
        assert_eq!(jsq.report.report.completed, 64);
        assert!(
            jsq.report.report.ttft.p99 < rr.report.report.ttft.p99 * 0.85,
            "JSQ p99 TTFT {:.1} ms must beat RR {:.1} ms by a clear margin",
            jsq.report.report.ttft.p99 * 1e3,
            rr.report.report.ttft.p99 * 1e3
        );
        assert!(
            jsq.report.utilization_skew <= rr.report.utilization_skew,
            "JSQ skew {:.3} vs RR {:.3}",
            jsq.report.utilization_skew,
            rr.report.utilization_skew
        );
        assert!(render_cluster_routing(&rows).contains("join-shortest-queue"));
    }

    #[test]
    fn paged_kv_study_exposes_fragmentation() {
        let rows = paged_kv_study().unwrap();
        assert_eq!(rows.len(), 4);
        let frag = |r: &PagedKvRow| r.report.kv_fragmentation_peak_bytes;
        assert_eq!(frag(&rows[0]), 0.0, "contiguous does not fragment");
        // Fragmentation grows with block size.
        assert!(frag(&rows[1]) > 0.0);
        assert!(frag(&rows[3]) > frag(&rows[1]));
        for r in &rows {
            assert_eq!(r.report.completed, 32, "{:?}", r.layout);
        }
        assert!(render_paged_kv(&rows).contains("paged/64"));
    }

    #[test]
    fn disaggregated_split_beats_mixed_on_prefill_heavy_load() {
        // The PR 4 acceptance criterion: the 2P+2D split must beat the
        // 4-mixed baseline on decode interference under prefill-heavy
        // flash crowds — a strictly smaller worst iteration stall and a
        // lower inter-token p99.
        let rows = disaggregation_study().unwrap();
        assert_eq!(rows.len(), 2);
        let mixed = &rows[0].report.report;
        let disagg = &rows[1].report.report;
        assert_eq!(mixed.completed, 48);
        assert_eq!(disagg.completed, 48);
        assert!(
            disagg.max_step_s < mixed.max_step_s,
            "dedicated prefill blades must bound the decode stall: {} vs {}",
            disagg.max_step_s,
            mixed.max_step_s
        );
        assert!(
            disagg.tpot.p99 < mixed.tpot.p99,
            "disaggregation must cut the inter-token tail: {} vs {}",
            disagg.tpot.p99,
            mixed.tpot.p99
        );
        assert!(render_disaggregation(&rows).contains("2P + 2D"));
    }

    #[test]
    fn recorded_trace_study_runs_on_bundled_sample() {
        let rows = recorded_trace_study().unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.report.report.completed, 64, "{} blades", r.blades);
            assert_eq!(r.report.report.per_class.len(), 2);
            let split: u32 = r.report.report.per_class.iter().map(|c| c.requests).sum();
            assert_eq!(split, 64, "every request lands in a class");
        }
        // Adding blades never worsens the recorded trace's tail.
        for w in rows.windows(2) {
            assert!(
                w[1].report.report.ttft.p99 <= w[0].report.report.ttft.p99 + 1e-12,
                "{}→{} blades must not inflate p99 TTFT",
                w[0].blades,
                w[1].blades
            );
        }
        assert!(render_recorded_trace(&rows).contains("inter-goodput"));
    }

    #[test]
    fn prefix_caching_wins_materially_on_shared_prompts_at_equal_kv() {
        // The PR 5 acceptance criterion: with 90% of requests sharing a
        // long system prompt, enabling prefix caching at *equal* KV
        // capacity must buy a material TTFT-p99 win (the skipped prefill
        // is the dominant cost), on the single blade and on the
        // disaggregated prefill tier alike — and the reported hit rate /
        // shared occupancy must be consistent with refcount accounting.
        let rows = prefix_caching_study().unwrap();
        assert_eq!(rows.len(), 8);
        let find = |topology: &str, share: f64, caching: bool| {
            &rows
                .iter()
                .find(|r| r.topology == topology && r.share == share && r.caching == caching)
                .expect("row present")
                .report
                .report
        };
        for topology in ["1 blade", "1P + 3D"] {
            let plain = find(topology, 0.9, false);
            let cached = find(topology, 0.9, true);
            assert_eq!(cached.completed, 48, "{topology}");
            assert!(
                cached.ttft.p99 < plain.ttft.p99 * 0.8,
                "{topology}: cached TTFT p99 {:.0} ms must materially beat uncached {:.0} ms",
                cached.ttft.p99 * 1e3,
                plain.ttft.p99 * 1e3
            );
            assert!(
                cached.goodput_tok_s >= plain.goodput_tok_s,
                "{topology}: caching must not cost goodput"
            );
            // Hit-rate / occupancy consistency with the refcount
            // accounting: every prefix-tagged admission was looked up
            // exactly once, savings only come from hits, and the shared
            // pool is bounded by the whole-KV peak.
            assert!(cached.prefix_hits > 0);
            assert!(cached.prefix_hit_rate() > 0.5 && cached.prefix_hit_rate() <= 1.0);
            assert!(cached.prefix_tokens_saved >= 600 * cached.prefix_hits / 2);
            assert!(cached.kv_shared_peak_bytes > 0.0);
            assert!(cached.kv_shared_peak_bytes <= cached.kv_peak_bytes);
            assert_eq!(plain.prefix_hits + plain.prefix_misses, 0);
        }
        // No sharing, caching on: lookups all miss, nothing saved — and
        // the share sweep shows the win growing with the share fraction.
        let none = find("1 blade", 0.0, true);
        assert_eq!(none.prefix_hits, 0);
        assert_eq!(none.prefix_tokens_saved, 0);
        let gain = |share: f64| {
            let plain = find("1 blade", share, false);
            let cached = find("1 blade", share, true);
            plain.ttft.p99 - cached.ttft.p99
        };
        assert!(gain(0.9) > gain(0.5) * 0.9, "more sharing, more win");
        assert!(render_prefix_caching(&rows).contains("hit rate"));
    }

    #[test]
    fn cluster_cache_coordination_wins_at_equal_aggregate_kv() {
        // The coordination acceptance criteria: at equal aggregate KV,
        // cache-aware routing must beat both scatter baselines on hit
        // rate *and* the TTFT tail; the global tier must actually
        // stream blocks to cold blades; and LFU must hold more of the
        // Zipf head resident than LRU under the same pressure.
        let rows = cluster_cache_study().unwrap();
        assert_eq!(rows.len(), 5);
        let find = |routing: RoutingPolicy, tier: bool, eviction: CacheEviction| {
            rows.iter()
                .find(|r| r.routing == routing && r.tier == tier && r.eviction == eviction)
                .expect("row present")
        };
        let rr = find(RoutingPolicy::RoundRobin, false, CacheEviction::Lru);
        let jsq = find(RoutingPolicy::JoinShortestQueue, false, CacheEviction::Lru);
        let aware = find(RoutingPolicy::CacheAware, false, CacheEviction::Lru);
        let tiered = find(RoutingPolicy::CacheAware, true, CacheEviction::Lru);
        let lfu = find(RoutingPolicy::CacheAware, true, CacheEviction::Lfu);
        for r in &rows {
            assert_eq!(r.report.report.completed, 96);
        }
        for baseline in [rr, jsq] {
            assert!(
                aware.report.report.prefix_hit_rate() > baseline.report.report.prefix_hit_rate(),
                "cache-aware hit rate {:.2} must beat {} at {:.2}",
                aware.report.report.prefix_hit_rate(),
                baseline.routing,
                baseline.report.report.prefix_hit_rate()
            );
            assert!(
                aware.report.report.ttft.p99 < baseline.report.report.ttft.p99,
                "cache-aware TTFT p99 {:.0} ms must beat {} at {:.0} ms",
                aware.report.report.ttft.p99 * 1e3,
                baseline.routing,
                baseline.report.report.ttft.p99 * 1e3
            );
        }
        // Affinity concentrates each prompt's blocks on one blade: the
        // residency spread is the price the report makes visible.
        assert!(aware.report.cache_residency_skew >= rr.report.cache_residency_skew);
        // The global tier finds cold blades to warm and wins at least
        // one stream-vs-recompute race over the cluster interconnect.
        let t = &tiered.report.report;
        assert!(t.remote_prefix_hits > 0, "tier must be exercised");
        assert!(
            t.remote_prefix_streams > 0 && t.remote_kv_streamed_bytes > 0.0,
            "the interconnect must win at least one race"
        );
        assert_eq!(
            t.remote_prefix_streams + t.remote_prefix_recomputes,
            t.remote_prefix_hits
        );
        assert!(
            t.prefix_tokens_saved >= aware.report.report.prefix_tokens_saved,
            "streamed tier hits only add to the saved prefill"
        );
        // Popularity-weighted eviction: under the same pressure LFU
        // keeps the Zipf-head prompt's blocks where LRU recency drops
        // them during tail bursts, saving more prefill.
        assert!(
            lfu.report.report.prefix_tokens_saved > tiered.report.report.prefix_tokens_saved,
            "LFU must retain the Zipf head: {} vs LRU {}",
            lfu.report.report.prefix_tokens_saved,
            tiered.report.report.prefix_tokens_saved
        );
        let rendered = render_cluster_cache(&rows);
        assert!(rendered.contains("cache-aware"));
        assert!(rendered.contains("hit rate"));
    }

    #[test]
    fn sjf_buys_interactive_goodput_under_mixed_classes() {
        let rows = slo_class_study().unwrap();
        let find = |name: &str| rows.iter().find(|r| r.policy == name).expect("row");
        let fcfs = find("fcfs").report.class("interactive").unwrap();
        let sjf = find("sjf").report.class("interactive").unwrap();
        assert!(
            sjf.slo_attainment > fcfs.slo_attainment,
            "under the flash burst SJF must lift interactive attainment: {} vs {}",
            sjf.slo_attainment,
            fcfs.slo_attainment
        );
        assert!(
            sjf.ttft.p99 < fcfs.ttft.p99,
            "SJF must cut the interactive TTFT tail: {} vs {}",
            sjf.ttft.p99,
            fcfs.ttft.p99
        );
        assert!(
            find("sjf").report.weighted_goodput_tok_s()
                > find("fcfs").report.weighted_goodput_tok_s(),
            "2×-weighted interactive goodput should favor SJF"
        );
        assert!(render_slo_classes(&rows).contains("weighted"));
    }

    #[test]
    fn control_plane_closes_the_loop() {
        // The PR 7 acceptance criteria, all three control-plane legs.
        let s = control_plane_study().unwrap();
        let find = |label: &str| {
            &s.overload
                .iter()
                .find(|r| r.label == label)
                .expect("row present")
                .report
                .report
        };
        let fcfs = find("fcfs");
        let wf = find("weighted-fair");
        let sp = find("strict-priority");
        for rep in [fcfs, wf, sp] {
            assert_eq!(rep.completed, 192);
            assert_eq!(rep.shed_requests, 0);
        }
        // (1) Class-aware ordering must buy weighted goodput at the
        // (far past 2×) overload the flash crowd creates.
        assert!(
            wf.weighted_goodput_tok_s() > fcfs.weighted_goodput_tok_s(),
            "weighted-fair must beat FCFS on weighted goodput: {:.0} vs {:.0}",
            wf.weighted_goodput_tok_s(),
            fcfs.weighted_goodput_tok_s()
        );
        assert!(
            sp.class("interactive").unwrap().slo_attainment
                >= fcfs.class("interactive").unwrap().slo_attainment,
            "strict priority must not lose interactive attainment to FCFS"
        );
        // (2) The shedding gate holds the strict class at its floor by
        // dropping batch work, where FCFS without the gate misses it.
        let shed = find("fcfs+shed");
        let inter = |rep: &ServingReport| rep.class("interactive").unwrap().slo_attainment;
        assert!(shed.shed_requests > 0, "the gate must actually shed");
        assert_eq!(
            shed.class("interactive").unwrap().shed,
            0,
            "shedding never drops the strict class"
        );
        assert!(
            inter(shed) >= s.floor,
            "with shedding, interactive attainment {:.2} must hold the {:.2} floor",
            inter(shed),
            s.floor
        );
        assert!(
            inter(fcfs) < s.floor,
            "ungated FCFS at {:.2} should miss the {:.2} floor (else the gate is idle)",
            inter(fcfs),
            s.floor
        );
        // (3) The autoscaler tracks the diurnal trace without flapping:
        // every request completes, the pool actually grows past its
        // 1-blade start, and the event count stays bounded.
        assert_eq!(s.fixed.report.completed, CONTROL_DIURNAL_REQUESTS);
        assert_eq!(s.autoscaled.report.completed, CONTROL_DIURNAL_REQUESTS);
        assert!(
            s.autoscaled.peak_blades >= 2,
            "the daytime peak must force a scale-up (peak {})",
            s.autoscaled.peak_blades
        );
        assert!(
            s.autoscaled.scale_events <= 16,
            "bounded flapping: {} scale events over {} requests",
            s.autoscaled.scale_events,
            CONTROL_DIURNAL_REQUESTS
        );
        assert!(
            s.autoscaled.report.throughput_tok_s > s.fixed.report.throughput_tok_s * 0.5,
            "scaling down in the troughs must not halve delivered throughput"
        );
        assert!(render_control_plane(&s).contains("auto-1..4"));
    }

    #[test]
    fn telemetry_study_resolves_gate_and_autoscaler() {
        // The study's own asserts pin the gate's open/close windows, the
        // scale-up lag, shed conservation and the 10 % sketch bound;
        // this test pins the surface it returns.
        let s = telemetry_study().unwrap();
        assert!(s.overload.report.shed_requests > 0);
        assert!(s.shed_open_s <= s.shed_close_s);
        assert!(s.shed_open_window.0 <= s.shed_open_s);
        assert!(s.scale_lag_s >= 0.0);
        assert!(s.depth_cross_s <= s.scale_up_s);
        // The exporters carry the full series.
        assert!(s.csv.starts_with("window_start_s,"));
        assert_eq!(s.csv.lines().count(), s.windows.len() + 1);
        assert!(s.prometheus.contains("# TYPE"));
        // The default build carries the self-profiler; every engine
        // iteration scans admission (central dispatch pulls from the
        // shared queue without per-blade routing calls).
        assert!(!s.profile.is_empty());
        assert!(s.profile.admission_rounds > 0);
        let rendered = render_telemetry(&s);
        assert!(rendered.contains("gate opens"));
        assert!(rendered.contains("lag"));
        assert!(rendered.contains("admission"));
    }
}
