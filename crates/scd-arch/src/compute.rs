//! The high-throughput compute core (§III): a banked, regular array of
//! bf16 MAC units derived bottom-up from the technology and the compiled
//! MAC datapath.

use crate::error::ArchError;
use scd_tech::units::{Area, Energy, Frequency};
use scd_tech::{JosephsonJunction, Technology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A banked MAC array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacArray {
    /// Junctions per MAC (the paper's ~8 kJJ datapath).
    pub mac_junctions: u64,
    /// Number of MAC units.
    pub mac_count: u64,
    /// Array clock.
    pub clock: Frequency,
    /// Sustainable utilization (the paper's 80 %).
    pub utilization: f64,
}

impl MacArray {
    /// Derives the array that fits in `compute_area` of `tech` silicon
    /// with `mac_junctions` per unit.
    ///
    /// For the paper's numbers — a 144 mm² die with ~57 % devoted to MACs,
    /// 4 MJJ/mm² and 8 kJJ per MAC — this yields ≈ 41 k MACs and the
    /// Fig. 3c peak of ~2.45 PFLOP/s (see DESIGN.md on the "400k" typo in
    /// the text).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if no MAC fits.
    pub fn derive(
        tech: &Technology,
        compute_area: Area,
        mac_junctions: u64,
        utilization: f64,
    ) -> Result<Self, ArchError> {
        let budget = tech.devices_in(compute_area);
        let count = budget / mac_junctions.max(1);
        if count == 0 {
            return Err(ArchError::InvalidConfig {
                reason: format!("compute area {compute_area} fits no {mac_junctions}-JJ MAC"),
            });
        }
        Ok(Self {
            mac_junctions,
            mac_count: count,
            clock: tech.clock,
            utilization,
        })
    }

    /// The SPU baseline: 57 % of a 144 mm² die at 8 kJJ per MAC, 80 %
    /// utilization.
    ///
    /// # Errors
    ///
    /// Propagates [`MacArray::derive`] errors.
    pub fn spu_baseline(tech: &Technology) -> Result<Self, ArchError> {
        Self::derive(tech, Area::from_mm2(144.0 * 0.57), 8_000, 0.8)
    }

    /// Peak throughput: 2 ops (multiply + accumulate) per MAC per clock.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.mac_count as f64 * 2.0 * self.clock.hz()
    }

    /// Peak × utilization cap.
    #[must_use]
    pub fn achievable_flops(&self) -> f64 {
        self.peak_flops() * self.utilization
    }

    /// Total junction budget of the array.
    #[must_use]
    pub fn junctions(&self) -> u64 {
        self.mac_count * self.mac_junctions
    }

    /// Dynamic compute power at full utilization.
    #[must_use]
    pub fn dynamic_energy_per_cycle(&self, jj: &JosephsonJunction) -> Energy {
        // Half the junctions switch per cycle at full load.
        jj.switching_energy() * (self.junctions() as f64) * 0.5 * self.utilization
    }
}

impl fmt::Display for MacArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MACs × {} @ {} = {:.2} PFLOP/s peak",
            self.mac_count,
            self.mac_junctions,
            self.clock,
            self.peak_flops() / 1e15
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spu_baseline_matches_fig3c_peak() {
        let tech = Technology::scd_nbtin();
        let array = MacArray::spu_baseline(&tech).unwrap();
        let pflops = array.peak_flops() / 1e15;
        assert!(
            (2.3..=2.6).contains(&pflops),
            "expected ~2.45 PFLOP/s, got {pflops}"
        );
        assert!(array.mac_count > 40_000 && array.mac_count < 42_000);
    }

    #[test]
    fn achievable_is_80_percent() {
        let tech = Technology::scd_nbtin();
        let array = MacArray::spu_baseline(&tech).unwrap();
        let ratio = array.achievable_flops() / array.peak_flops();
        assert!((ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tiny_area_rejected() {
        let tech = Technology::scd_nbtin();
        assert!(MacArray::derive(&tech, Area::from_um2(1.0), 8_000, 0.8).is_err());
    }

    #[test]
    fn energy_per_cycle_is_sub_picojoule_per_mac() {
        let tech = Technology::scd_nbtin();
        let array = MacArray::spu_baseline(&tech).unwrap();
        let jj = JosephsonJunction::nominal();
        let per_mac = array.dynamic_energy_per_cycle(&jj).joules() / array.mac_count as f64;
        assert!(per_mac < 1e-12, "SCD MACs must be far below pJ/op");
    }
}
