//! Quickstart: build the paper's baseline SCD blade, estimate GPT-3
//! training and Llama inference, and compare against 64 H100s.
//!
//! Run with: `cargo run --release --example quickstart`

use llm_workload::{ModelZoo, Parallelism};
use optimus::{RequestShape, SpeedupStudy};
use scd_arch::Blade;

fn main() -> Result<(), scd_perf::ScdError> {
    // 1. The system, derived bottom-up from NbTiN device data (Fig. 3c).
    let blade = Blade::baseline();
    println!("{blade}");
    println!("per-SPU view: {}", blade.accelerator());
    println!();

    // 2. The paper's standard comparison: 64 SPUs at 16 TB/s vs 64 H100s.
    let study = SpeedupStudy::paper_baseline();

    // Training: GPT3-76B, B=64, TP=8 / PP=8 / DP=1, bf16.
    let train = study.training(&ModelZoo::gpt3_76b(), &Parallelism::training_baseline(), 64)?;
    println!("GPT3-76B training (B=64):");
    println!("  SPU: {}", train.scd);
    println!("  GPU: {}", train.gpu);
    println!("  speed-up: {:.2}x", train.speedup);
    println!();

    // Inference: Llama-405B, B=8, I/O 200/200, TP=64.
    let infer = study.inference(
        &ModelZoo::llama_405b(),
        &Parallelism::pure_tp(64)?,
        RequestShape::paper_io(8),
    )?;
    println!("Llama-405B inference (B=8, I/O 200/200):");
    println!("  SPU: {}", infer.scd);
    println!("  GPU: {}", infer.gpu);
    println!("  speed-up: {:.2}x", infer.speedup);
    Ok(())
}
